"""Benchmark result memoisation.

The paper derives three figures (throughput, read latency, write
latency) from every workload sweep; re-running the sweep per figure
would triple the cost.  :class:`ResultCache` keys runs by their full
configuration and hands back the stored :class:`BenchmarkResult`.

A cache can additionally be backed by an on-disk
:class:`~repro.orchestrator.store.ResultStore`: misses read through to
the store before running anything, and fresh results are written back,
so results are shared across processes and across runs.  Set the
``REPRO_RESULT_STORE`` environment variable to a directory to give the
process-wide :func:`default_cache` a persistent store.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.sim.cluster import ClusterSpec
from repro.ycsb.runner import BenchmarkConfig, BenchmarkResult, run_benchmark
from repro.ycsb.workload import Workload

__all__ = ["ResultCache", "default_cache"]


class ResultCache:
    """Memoises ``run_benchmark`` calls by configuration.

    ``store`` is an optional :class:`~repro.orchestrator.store.ResultStore`
    (or anything with compatible ``get``/``put``): cache misses consult
    it before running the benchmark, and new results are persisted to it
    when they are portable (plain measurement runs — no fault schedules,
    traces or metrics attached).
    """

    def __init__(self, runner: Callable[..., BenchmarkResult] = None,
                 store=None):
        self._runner = runner or (
            lambda config: run_benchmark(config.store, config.workload,
                                         config.n_nodes, config=config))
        self._results: dict[str, BenchmarkResult] = {}
        self.store = store
        self.hits = 0
        self.misses = 0
        #: Subset of ``hits`` served from the on-disk store.
        self.store_hits = 0

    @staticmethod
    def _key(config: BenchmarkConfig) -> str:
        # Delegates to the config itself: BenchmarkConfig.to_dict() is
        # the single source of truth for config identity, shared with
        # BenchmarkConfig.content_hash() (the on-disk store address).
        return config.content_key()

    def get(self, config: BenchmarkConfig) -> BenchmarkResult:
        """The result for ``config``, running the benchmark on a miss."""
        key = self._key(config)
        if key in self._results:
            self.hits += 1
            return self._results[key]
        if self.store is not None:
            stored = self.store.get(config)
            if stored is not None:
                self.hits += 1
                self.store_hits += 1
                self._results[key] = stored
                return stored
        self.misses += 1
        result = self._runner(config)
        self._results[key] = result
        if self.store is not None:
            self.store.put(result)
        return result

    def run(self, store: str, workload: Workload, n_nodes: int,
            cluster_spec: Optional[ClusterSpec] = None,
            **overrides) -> BenchmarkResult:
        """Convenience wrapper building the config inline."""
        kwargs = dict(overrides)
        if cluster_spec is not None:
            kwargs["cluster_spec"] = cluster_spec
        config = BenchmarkConfig(store=store, workload=workload,
                                 n_nodes=n_nodes, **kwargs)
        return self.get(config)

    def clear(self) -> None:
        """Forget every in-memory result (the disk store is untouched)."""
        self._results.clear()


_GLOBAL_CACHE: Optional[ResultCache] = None


def default_cache() -> ResultCache:
    """The process-wide cache shared by figures and benchmarks.

    When ``REPRO_RESULT_STORE`` names a directory, the cache is backed
    by the on-disk result store rooted there, so repeated invocations
    (and parallel workers) share completed points.
    """
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        store = None
        root = os.environ.get("REPRO_RESULT_STORE")
        if root:
            from repro.orchestrator.store import ResultStore

            store = ResultStore(root)
        _GLOBAL_CACHE = ResultCache(store=store)
    return _GLOBAL_CACHE
