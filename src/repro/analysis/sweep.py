"""Programmatic parameter sweeps.

A light layer over the cached runner for studies beyond the paper's
fixed figures: sweep any of (store, workload, node count, records, RF,
...) and collect a tidy list of rows, ready for export or tabulation.
Used by ``examples/scaling_study.py``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from itertools import product
from typing import Iterable, Optional

from repro.analysis.cache import ResultCache, default_cache
from repro.analysis.provenance import stamp
from repro.sim.cluster import CLUSTER_M, ClusterSpec
from repro.ycsb.runner import BenchmarkResult
from repro.ycsb.workload import Workload

__all__ = ["SweepSpec", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepSpec:
    """The cartesian product of configurations to run."""

    stores: tuple[str, ...]
    workloads: tuple[Workload, ...]
    node_counts: tuple[int, ...]
    cluster_spec: ClusterSpec = CLUSTER_M
    records_per_node: int = 10_000
    measured_ops: int = 3000
    warmup_ops: int = 400
    seed: int = 42
    store_kwargs: dict = field(default_factory=dict)

    def points(self) -> Iterable[tuple[str, Workload, int]]:
        """All (store, workload, nodes) combinations, in order."""
        return product(self.stores, self.workloads, self.node_counts)

    def __len__(self) -> int:
        return (len(self.stores) * len(self.workloads)
                * len(self.node_counts))


@dataclass
class SweepResult:
    """Collected results plus tabulation helpers."""

    spec: SweepSpec
    results: list[BenchmarkResult]
    skipped: list[tuple[str, Workload, int, str]]

    def rows(self) -> list[dict]:
        """One flat dict per completed point."""
        return [result.row() for result in self.results]

    def best_by(self, workload_name: str, n_nodes: int,
                metric: str = "throughput_ops") -> Optional[BenchmarkResult]:
        """The winning store for one (workload, scale) cell."""
        candidates = [
            r for r in self.results
            if r.config.workload.name == workload_name
            and r.config.n_nodes == n_nodes
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda r: getattr(r, metric))

    def to_json(self, indent: int = 2) -> str:
        """The sweep as a JSON document with a ``provenance`` stamp.

        The stamp hashes the full :class:`SweepSpec` (including its
        seed), so an exported sweep names the exact configuration
        product that produced it.
        """
        payload = {
            "rows": self.rows(),
            "skipped": [
                {"store": store, "workload": workload.name,
                 "n_nodes": nodes, "reason": reason}
                for store, workload, nodes, reason in self.skipped
            ],
        }
        return json.dumps(stamp(payload, self.spec), indent=indent,
                          sort_keys=True)

    def series(self, store: str, workload_name: str,
               metric: str = "throughput_ops") -> list[tuple[int, float]]:
        """(nodes, metric) points for one store/workload pair."""
        out = []
        for result in self.results:
            if (result.config.store == store
                    and result.config.workload.name == workload_name):
                out.append((result.config.n_nodes,
                            getattr(result, metric)))
        return sorted(out)


def run_sweep(spec: SweepSpec,
              cache: Optional[ResultCache] = None,
              progress=None) -> SweepResult:
    """Run every point of ``spec``; skip store/workload mismatches.

    Stores that cannot run a workload (Voldemort under scans) are
    recorded in ``skipped`` rather than raising, so full-product sweeps
    stay convenient.  ``progress`` is an optional callback
    ``(index, total, store, workload, nodes)``.
    """
    cache = cache or default_cache()
    results: list[BenchmarkResult] = []
    skipped: list[tuple[str, Workload, int, str]] = []
    total = len(spec)
    for index, (store, workload, nodes) in enumerate(spec.points()):
        if progress is not None:
            progress(index, total, store, workload, nodes)
        try:
            result = cache.run(
                store, workload, nodes,
                cluster_spec=spec.cluster_spec,
                records_per_node=spec.records_per_node,
                measured_ops=spec.measured_ops,
                warmup_ops=spec.warmup_ops,
                seed=spec.seed,
                store_kwargs=dict(spec.store_kwargs),
            )
            results.append(result)
        except ValueError as error:
            skipped.append((store, workload, nodes, str(error)))
    return SweepResult(spec, results, skipped)
