"""Builders for every table and figure in the paper's evaluation.

Each builder regenerates one artefact (Table 1, Figures 3-20) on the
simulated substrate and returns a :class:`FigureData` carrying the same
series the paper plots.  Figures derived from the same sweep share runs
through :mod:`repro.analysis.cache`.

Two profiles control cost: ``quick`` (default; 3 cluster sizes, 20 K
records/node) and ``paper`` (the full 1-12 node sweep, 50 K records per
node).  Select with the ``REPRO_BENCH_PROFILE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.cluster import CLUSTER_D
from repro.storage.encoding import DISK_USAGE_MODELS
from repro.storage.record import APM_SCHEMA
from repro.stores.registry import STORE_NAMES, store_class
from repro.analysis.cache import ResultCache, default_cache
from repro.ycsb.workload import (
    WORKLOADS,
    WORKLOAD_R,
    WORKLOAD_RS,
    WORKLOAD_RSW,
    WORKLOAD_RW,
    WORKLOAD_W,
    Workload,
)

__all__ = [
    "BenchProfile",
    "FigureData",
    "FIGURES",
    "active_profile",
    "build_figure",
    "profile_by_name",
]

#: Stores that can run scan workloads (the paper omits Voldemort there).
SCAN_STORES = tuple(s for s in STORE_NAMES if store_class(s).supports_scans)
#: Stores in the bounded-throughput experiment (Figures 15/16): the paper
#: omitted VoltDB "due to [its] prohibitive latency above 4 nodes".
BOUNDED_STORES = ("cassandra", "hbase", "voldemort", "mysql", "redis")
#: Disk-backed stores plotted in Figure 17.
DISK_STORES = ("cassandra", "hbase", "voldemort", "mysql")
#: Stores measured on the disk-bound cluster (Figures 18-20).
CLUSTER_D_STORES = ("cassandra", "hbase", "voldemort")


@dataclass(frozen=True)
class BenchProfile:
    """Cost/fidelity trade-off for figure regeneration."""

    name: str
    scales: tuple[int, ...]
    records_per_node: int
    cluster_d_nodes: int = 8
    cluster_d_records: int = 40_000
    #: Cluster D held 150 M records over the whole cluster (Section 3).
    cluster_d_paper_records: int = 150_000_000 // 8
    bounded_nodes: int = 8
    bounded_levels: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95)
    measured_ops: int = 6000
    warmup_ops: int = 800
    seed: int = 42


SMOKE_PROFILE = BenchProfile(
    name="smoke", scales=(1, 4), records_per_node=6_000,
    cluster_d_records=8_000, cluster_d_nodes=4, bounded_nodes=4,
    bounded_levels=(0.6,), measured_ops=1500, warmup_ops=300,
)
QUICK_PROFILE = BenchProfile(
    name="quick", scales=(1, 4, 8), records_per_node=12_000,
    cluster_d_records=25_000, bounded_nodes=4,
    bounded_levels=(0.5, 0.7, 0.9), measured_ops=4000,
)
PAPER_PROFILE = BenchProfile(
    name="paper", scales=(1, 2, 4, 8, 12), records_per_node=50_000,
    cluster_d_records=75_000,
)

_PROFILES = {"smoke": SMOKE_PROFILE, "quick": QUICK_PROFILE,
             "paper": PAPER_PROFILE}


def profile_by_name(name: str) -> BenchProfile:
    """The named cost/fidelity profile (``smoke``/``quick``/``paper``)."""
    try:
        return _PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(_PROFILES))
        raise ValueError(
            f"unknown profile {name!r}; expected one of {known}")


def active_profile() -> BenchProfile:
    """Profile selected by ``REPRO_BENCH_PROFILE`` (default: quick)."""
    return profile_by_name(os.environ.get("REPRO_BENCH_PROFILE", "quick"))


@dataclass
class FigureData:
    """One regenerated artefact: labelled series over an x axis."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    #: series name -> [(x, y), ...]
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    log_y: bool = False
    notes: list[str] = field(default_factory=list)

    def series_value(self, name: str, x: float) -> Optional[float]:
        """The y value of ``name`` at ``x``, or ``None``."""
        for px, py in self.series.get(name, []):
            if px == x:
                return py
        return None

    def max_x(self) -> float:
        """Largest x across all series."""
        return max(x for points in self.series.values() for x, __ in points)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

def table1(cache: ResultCache, profile: BenchProfile) -> FigureData:
    """Table 1: the five workload mixes, nominal and as sampled."""
    data = FigureData("table1", "Workload specifications (Table 1)",
                      "workload", "%")
    import random
    for name, workload in WORKLOADS.items():
        data.series[f"{name}/read"] = [(0, workload.read_proportion * 100)]
        data.series[f"{name}/scan"] = [(0, workload.scan_proportion * 100)]
        data.series[f"{name}/insert"] = [
            (0, workload.insert_proportion * 100)]
        # empirical check: sample the op chooser
        rng = random.Random(profile.seed)
        table = workload.op_table()
        counts = {op: 0 for op, __ in table}
        n = 20_000
        for __ in range(n):
            roll = rng.random()
            for op, threshold in table:
                if roll <= threshold:
                    counts[op] += 1
                    break
        for op, count in counts.items():
            data.series[f"{name}/{op.value}/sampled"] = [
                (0, 100 * count / n)]
    return data


# ---------------------------------------------------------------------------
# Workload sweeps (Figures 3-14)
# ---------------------------------------------------------------------------

def _sweep(cache: ResultCache, profile: BenchProfile, workload: Workload,
           stores: tuple[str, ...], metric: str, figure_id: str,
           title: str, y_label: str, log_y: bool) -> FigureData:
    data = FigureData(figure_id, title, "Number of Nodes", y_label,
                      log_y=log_y)
    for store in stores:
        points = []
        for n in profile.scales:
            result = cache.run(
                store, workload, n,
                records_per_node=profile.records_per_node,
                measured_ops=profile.measured_ops,
                warmup_ops=profile.warmup_ops,
                seed=profile.seed,
            )
            if metric == "throughput":
                value = result.throughput_ops
            elif metric == "read":
                value = result.read_latency.mean * 1000
            elif metric == "write":
                value = result.write_latency.mean * 1000
            elif metric == "scan":
                value = result.scan_latency.mean * 1000
            else:  # pragma: no cover - internal misuse
                raise ValueError(f"unknown metric {metric!r}")
            points.append((float(n), value))
        data.series[store] = points
    return data


def _make_sweep_builder(workload: Workload, stores: tuple[str, ...],
                        metric: str, figure_id: str, title: str,
                        y_label: str, log_y: bool) -> Callable:
    def builder(cache: ResultCache, profile: BenchProfile) -> FigureData:
        return _sweep(cache, profile, workload, stores, metric, figure_id,
                      title, y_label, log_y)
    builder.__name__ = figure_id
    builder.__doc__ = f"{title} ({figure_id})."
    return builder


fig3 = _make_sweep_builder(WORKLOAD_R, STORE_NAMES, "throughput", "fig3",
                           "Throughput for Workload R",
                           "Throughput (Operations/sec)", False)
fig4 = _make_sweep_builder(WORKLOAD_R, STORE_NAMES, "read", "fig4",
                           "Read latency for Workload R",
                           "Latency (ms)", True)
fig5 = _make_sweep_builder(WORKLOAD_R, STORE_NAMES, "write", "fig5",
                           "Write latency for Workload R",
                           "Latency (ms)", True)
fig6 = _make_sweep_builder(WORKLOAD_RW, STORE_NAMES, "throughput", "fig6",
                           "Throughput for Workload RW",
                           "Throughput (Ops/sec)", False)
fig7 = _make_sweep_builder(WORKLOAD_RW, STORE_NAMES, "read", "fig7",
                           "Read latency for Workload RW",
                           "Latency (ms)", True)
fig8 = _make_sweep_builder(WORKLOAD_RW, STORE_NAMES, "write", "fig8",
                           "Write latency for Workload RW",
                           "Latency (ms)", True)
fig9 = _make_sweep_builder(WORKLOAD_W, STORE_NAMES, "throughput", "fig9",
                           "Throughput for Workload W",
                           "Throughput (Ops/sec)", False)
fig10 = _make_sweep_builder(WORKLOAD_W, STORE_NAMES, "read", "fig10",
                            "Read latency for Workload W",
                            "Latency (ms)", True)
fig11 = _make_sweep_builder(WORKLOAD_W, STORE_NAMES, "write", "fig11",
                            "Write latency for Workload W",
                            "Latency (ms)", True)
fig12 = _make_sweep_builder(WORKLOAD_RS, SCAN_STORES, "throughput", "fig12",
                            "Throughput for Workload RS",
                            "Throughput (Ops/sec)", False)
fig13 = _make_sweep_builder(WORKLOAD_RS, SCAN_STORES, "scan", "fig13",
                            "Scan latency for Workload RS",
                            "Latency (ms)", True)
fig14 = _make_sweep_builder(WORKLOAD_RSW, SCAN_STORES, "throughput",
                            "fig14", "Throughput for Workload RSW",
                            "Throughput (Ops/sec)", False)


# ---------------------------------------------------------------------------
# Bounded throughput (Figures 15/16)
# ---------------------------------------------------------------------------

def _bounded(cache: ResultCache, profile: BenchProfile,
             metric: str, figure_id: str, title: str) -> FigureData:
    data = FigureData(figure_id, title,
                      "Percentage of Maximum Throughput",
                      "Latency (Normalized)")
    n = profile.bounded_nodes
    if n not in profile.scales:
        n = max(s for s in profile.scales if s <= profile.bounded_nodes)
    for store in BOUNDED_STORES:
        max_result = cache.run(
            store, WORKLOAD_R, n,
            records_per_node=profile.records_per_node,
            measured_ops=profile.measured_ops,
            warmup_ops=profile.warmup_ops, seed=profile.seed,
        )
        max_throughput = max_result.throughput_ops
        histogram = (max_result.read_latency if metric == "read"
                     else max_result.write_latency)
        base_latency = histogram.mean
        points = [(100.0, 100.0)]
        for level in profile.bounded_levels:
            result = cache.run(
                store, WORKLOAD_R, n,
                records_per_node=profile.records_per_node,
                measured_ops=profile.measured_ops,
                warmup_ops=profile.warmup_ops, seed=profile.seed,
                target_throughput=max_throughput * level,
            )
            histogram = (result.read_latency if metric == "read"
                         else result.write_latency)
            normalized = (100.0 * histogram.mean / base_latency
                          if base_latency > 0 else 0.0)
            points.append((level * 100.0, normalized))
        data.series[store] = sorted(points)
    return data


def fig15(cache: ResultCache, profile: BenchProfile) -> FigureData:
    """Figure 15: read latency under bounded load, Workload R."""
    return _bounded(cache, profile, "read", "fig15",
                    "Read latency for bounded throughput on Workload R")


def fig16(cache: ResultCache, profile: BenchProfile) -> FigureData:
    """Figure 16: write latency under bounded load, Workload R."""
    return _bounded(cache, profile, "write", "fig16",
                    "Write latency for bounded throughput on Workload R")


# ---------------------------------------------------------------------------
# Disk usage (Figure 17)
# ---------------------------------------------------------------------------

def fig17(cache: ResultCache, profile: BenchProfile) -> FigureData:
    """Figure 17: disk usage for 10 M records/node, 1-12 nodes.

    Uses the byte-exact encoding models at the paper's full scale (the
    simulated loads validate the same encodings at reduced scale).
    """
    data = FigureData("fig17", "Disk usage for 10 million records",
                      "Number of Nodes", "Disk Usage (GB)")
    records_per_node = 10_000_000
    scales = (1, 2, 4, 6, 8, 10, 12)
    for store in DISK_STORES:
        model = DISK_USAGE_MODELS[store]
        per_node = model.node_bytes(records_per_node)
        data.series[store] = [
            (float(n), per_node * n / 2**30) for n in scales
        ]
    raw = APM_SCHEMA.raw_record_bytes * records_per_node
    data.series["raw data"] = [
        (float(n), raw * n / 2**30) for n in scales
    ]
    return data


# ---------------------------------------------------------------------------
# Cluster D (Figures 18-20)
# ---------------------------------------------------------------------------

_D_WORKLOADS = (WORKLOAD_R, WORKLOAD_RW, WORKLOAD_W)


def _cluster_d(cache: ResultCache, profile: BenchProfile, metric: str,
               figure_id: str, title: str) -> FigureData:
    data = FigureData(figure_id, title, "Workload",
                      "Throughput (Ops/sec)" if metric == "throughput"
                      else "Latency (ms)", log_y=True)
    for store in CLUSTER_D_STORES:
        points = []
        for i, workload in enumerate(_D_WORKLOADS):
            result = cache.run(
                store, workload, profile.cluster_d_nodes,
                cluster_spec=CLUSTER_D,
                records_per_node=profile.cluster_d_records,
                paper_records_per_node=profile.cluster_d_paper_records,
                measured_ops=profile.measured_ops,
                warmup_ops=profile.warmup_ops, seed=profile.seed,
            )
            if metric == "throughput":
                value = result.throughput_ops
            elif metric == "read":
                value = result.read_latency.mean * 1000
            else:
                value = result.write_latency.mean * 1000
            points.append((float(i), value))
        data.series[store] = points
    data.notes.append("x axis: 0=R, 1=RW, 2=W (8 nodes, Cluster D)")
    return data


def fig18(cache: ResultCache, profile: BenchProfile) -> FigureData:
    """Figure 18: throughput for 8 nodes in Cluster D."""
    return _cluster_d(cache, profile, "throughput", "fig18",
                      "Throughput for 8 nodes in Cluster D")


def fig19(cache: ResultCache, profile: BenchProfile) -> FigureData:
    """Figure 19: read latency for 8 nodes in Cluster D."""
    return _cluster_d(cache, profile, "read", "fig19",
                      "Read latency for 8 nodes in Cluster D")


def fig20(cache: ResultCache, profile: BenchProfile) -> FigureData:
    """Figure 20: write latency for 8 nodes in Cluster D."""
    return _cluster_d(cache, profile, "write", "fig20",
                      "Write latency for 8 nodes in Cluster D")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

FIGURES: dict[str, Callable[[ResultCache, BenchProfile], FigureData]] = {
    "table1": table1,
    "fig3": fig3, "fig4": fig4, "fig5": fig5,
    "fig6": fig6, "fig7": fig7, "fig8": fig8,
    "fig9": fig9, "fig10": fig10, "fig11": fig11,
    "fig12": fig12, "fig13": fig13, "fig14": fig14,
    "fig15": fig15, "fig16": fig16, "fig17": fig17,
    "fig18": fig18, "fig19": fig19, "fig20": fig20,
}


def build_figure(figure_id: str, cache: Optional[ResultCache] = None,
                 profile: Optional[BenchProfile] = None) -> FigureData:
    """Regenerate one artefact by id (``table1``, ``fig3`` ... ``fig20``)."""
    try:
        builder = FIGURES[figure_id]
    except KeyError:
        known = ", ".join(FIGURES)
        raise ValueError(f"unknown figure {figure_id!r}; known: {known}")
    return builder(cache or default_cache(), profile or active_profile())
