"""Prometheus text-format snapshot of a metrics registry.

:func:`registry_to_prometheus` renders every metric as the standard
exposition format (`# HELP` / `# TYPE` headers plus one sample line per
metric), so a run's final counters can be diffed, scraped by standard
tooling, or archived next to the CSV timeseries.

The rendering is deterministic: metrics emit in sorted channel order,
values format via ``repr``, and no timestamps are attached — two runs
with the same seed produce byte-identical output.
"""

from __future__ import annotations

from repro.metrics.registry import MetricsRegistry, WindowedHistogram

__all__ = ["registry_to_prometheus"]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _labels_suffix(channel: str) -> str:
    """The ``{k="v"}`` tail of a channel name ('' when unlabelled)."""
    brace = channel.find("{")
    return channel[brace:] if brace >= 0 else ""


def registry_to_prometheus(registry: MetricsRegistry,
                           help_text: dict[str, str] | None = None,
                           exemplars: dict | None = None) -> str:
    """The registry snapshot in Prometheus text exposition format.

    ``help_text`` optionally maps metric names to `# HELP` strings.
    Histograms expose their ``_count`` and ``_sum`` samples (the
    per-window envelope lives in the CSV timeseries instead).

    ``exemplars`` optionally maps histogram channels (e.g.
    ``op_latency{op="read"}``) to ``(trace_id, value)`` pairs, rendered
    as OpenMetrics exemplar annotations on the ``_count`` sample —
    ``... # {trace_id="17"} 0.31`` — linking the exported distribution
    to a concrete retained trace.
    """
    help_text = help_text or {}
    exemplars = exemplars or {}
    lines: list[str] = []
    seen_headers: set[str] = set()
    for metric in registry:
        if metric.name not in seen_headers:
            seen_headers.add(metric.name)
            described = help_text.get(metric.name)
            if described:
                lines.append(
                    f"# HELP {metric.name} {_escape_help(described)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        suffix = _labels_suffix(metric.channel)
        if isinstance(metric, WindowedHistogram):
            count_line = (
                f"{metric.name}_count{suffix} {repr(float(metric.count))}")
            exemplar = exemplars.get(metric.channel)
            if exemplar is not None:
                trace_id, value = exemplar
                count_line += (f' # {{trace_id="{trace_id}"}} '
                               f"{repr(float(value))}")
            lines.append(count_line)
            lines.append(
                f"{metric.name}_sum{suffix} {repr(float(metric.total))}")
        else:
            lines.append(f"{metric.channel} {repr(float(metric.value))}")
    return "\n".join(lines) + ("\n" if lines else "")
