"""Run-metadata provenance for exported artefacts.

Every exported result JSON (figures, sweeps, chaos timelines, metrics
reports) carries a ``provenance`` stamp — the package version, the seed,
and a content hash of the configuration that produced it — so artefacts
are traceable across runs and refactors.

The stamp deliberately contains **no wall-clock timestamp**: exports
must stay byte-identical across two runs with the same seed, which is
the repo-wide determinism contract.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Optional

import repro

__all__ = ["config_fingerprint", "provenance", "stamp"]


def _jsonable(obj: Any) -> Any:
    """A deterministic JSON-ready projection of a config object.

    Dataclasses flatten to ``{type, fields...}``; mappings sort by key;
    callables and schedules reduce to their qualified name so two
    processes building the same config hash identically.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: _jsonable(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return {"__type__": type(obj).__name__, **fields}
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in sorted(obj.items(),
                                                        key=lambda kv:
                                                        str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    qualname = getattr(obj, "__qualname__", None)
    if qualname is not None:
        return f"<{qualname}>"
    return f"<{type(obj).__name__}>"


def config_fingerprint(config: Any) -> str:
    """A short, stable sha256 hex digest of a configuration object."""
    canonical = json.dumps(_jsonable(config), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def provenance(config: Any = None,
               seed: Optional[int] = None) -> dict:
    """The stamp dict: package version + config hash + seed.

    ``seed`` defaults to the config's own ``seed`` attribute when it has
    one, so call sites holding a full config need not repeat it.
    """
    if seed is None:
        seed = getattr(config, "seed", None)
    out = {"package_version": repro.__version__}
    if config is not None:
        out["config_hash"] = config_fingerprint(config)
    if seed is not None:
        out["seed"] = seed
    return out


def stamp(payload: dict, config: Any = None,
          seed: Optional[int] = None) -> dict:
    """Return ``payload`` with a ``provenance`` key added (in place)."""
    payload["provenance"] = provenance(config, seed)
    return payload
