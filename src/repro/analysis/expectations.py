"""Qualitative expectations per figure — the paper's claims as checks.

Each checker inspects a regenerated :class:`FigureData` and returns a
list of violations (empty = the reproduction matches the paper's shape).
The thresholds are deliberately loose: the paper itself only argues
ordering, monotonicity and rough factors, and our substrate is a
simulator, so we assert *shape*, not absolute numbers.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.figures import FigureData

__all__ = ["check_expectations", "EXPECTATIONS"]


def _last(data: FigureData, series: str) -> float:
    points = data.series[series]
    return points[-1][1]


def _first(data: FigureData, series: str) -> float:
    points = data.series[series]
    return points[0][1]


def _growth(data: FigureData, series: str) -> float:
    """Ratio of the last to the first y value."""
    first = _first(data, series)
    return _last(data, series) / first if first > 0 else float("inf")


def _scale_span(data: FigureData, series: str) -> float:
    points = data.series[series]
    return points[-1][0] / points[0][0]


def _check_linear_scalers(data: FigureData,
                          violations: list[str]) -> None:
    """Cassandra, HBase, Voldemort grow near-linearly.

    The paper's own Figure 3 has Cassandra at roughly 50% scaling
    efficiency over 1 -> 12 nodes (~25K -> ~150K), so "linear" here means
    at least 40% efficiency — far above the flat/sharded systems.
    """
    for store in ("cassandra", "hbase", "voldemort"):
        if store not in data.series:
            continue
        efficiency = _growth(data, store) / _scale_span(data, store)
        if efficiency < 0.40:
            violations.append(
                f"{data.figure_id}: {store} should scale near-linearly; "
                f"scaling efficiency was {efficiency:.2f}"
            )


def check_throughput_r(data: FigureData) -> list[str]:
    """Figure 3 claims (Section 5.1)."""
    v: list[str] = []
    # Redis fastest at one node, Cassandra about half of it.
    single = {s: _first(data, s) for s in data.series}
    if max(single, key=single.get) != "redis":
        v.append("fig3: Redis should have the highest 1-node throughput")
    if single.get("voltdb", 0) < single.get("cassandra", 0):
        v.append("fig3: VoltDB should beat Cassandra at one node")
    if single.get("hbase", 1) != min(single.values()):
        v.append("fig3: HBase should be slowest at one node")
    ratio = single.get("redis", 0) / max(1e-9, single.get("cassandra", 1))
    if not 1.4 <= ratio <= 3.0:
        v.append(f"fig3: Redis/Cassandra 1-node ratio {ratio:.2f} "
                 "should be around 2")
    _check_linear_scalers(data, v)
    # VoltDB throughput decreases beyond one node.
    if _last(data, "voltdb") >= _first(data, "voltdb"):
        v.append("fig3: VoltDB must not scale beyond one node")
    # Cassandra wins at the maximum node count.
    finals = {s: _last(data, s) for s in data.series}
    if max(finals, key=finals.get) != "cassandra":
        v.append("fig3: Cassandra should have the highest throughput "
                 "at the largest scale")
    return v


def check_read_latency_r(data: FigureData) -> list[str]:
    """Figure 4 claims."""
    v: list[str] = []
    if not (_last(data, "voldemort") < 1.0):
        v.append("fig4: Voldemort read latency should stay sub-millisecond")
    if not (_last(data, "hbase") > 3.5 * _last(data, "cassandra")):
        v.append("fig4: HBase read latency should sit far above "
                 "Cassandra's")
    # Sharded stores' latency decreases with scale.
    for store in ("redis", "mysql"):
        if _last(data, store) >= _first(data, store):
            v.append(f"fig4: {store} read latency should decrease "
                     "with cluster size")
    # VoltDB latency grows with scale.
    if _last(data, "voltdb") <= _first(data, "voltdb"):
        v.append("fig4: VoltDB read latency should increase with scale")
    return v


def check_write_latency_r(data: FigureData) -> list[str]:
    """Figure 5 claims."""
    v: list[str] = []
    finals = {s: _last(data, s) for s in data.series}
    if min(finals, key=finals.get) != "hbase":
        v.append("fig5: HBase should have the lowest write latency")
    if finals["cassandra"] != max(finals["cassandra"], finals["voldemort"],
                                  finals["redis"], finals["hbase"]):
        v.append("fig5: Cassandra should have the highest write latency "
                 "among the web data stores")
    return v


def check_throughput_rw(data: FigureData) -> list[str]:
    """Figure 6 claims (Section 5.2)."""
    v: list[str] = []
    _check_linear_scalers(data, v)
    if _last(data, "voltdb") >= _first(data, "voltdb"):
        v.append("fig6: VoltDB must not scale beyond one node")
    finals = {s: _last(data, s) for s in data.series}
    if max(finals, key=finals.get) != "cassandra":
        v.append("fig6: Cassandra should lead at the largest scale")
    return v


def check_throughput_w(data: FigureData) -> list[str]:
    """Figure 9 claims (Section 5.3)."""
    v: list[str] = []
    _check_linear_scalers(data, v)
    finals = {s: _last(data, s) for s in data.series}
    if max(finals, key=finals.get) != "cassandra":
        v.append("fig9: Cassandra should lead at the largest scale")
    return v


def check_read_latency_w(data: FigureData) -> list[str]:
    """Figure 10: HBase reads go towards the second range under W."""
    v: list[str] = []
    if _last(data, "hbase") < 100:
        v.append("fig10: HBase read latency under Workload W should reach "
                 "hundreds of milliseconds")
    return v


def check_write_latency_w(data: FigureData) -> list[str]:
    """Figure 11: HBase write latency rises sharply vs RW."""
    v: list[str] = []
    if _last(data, "voldemort") > 1.0:
        v.append("fig11: Voldemort write latency should stay ~RW level")
    return v


def check_throughput_rs(data: FigureData) -> list[str]:
    """Figure 12 claims (Section 5.4)."""
    v: list[str] = []
    singles = {s: _first(data, s) for s in data.series}
    if max(singles, key=singles.get) != "mysql":
        v.append("fig12: MySQL should have the best 1-node throughput")
    if _growth(data, "mysql") > 0.5:
        v.append("fig12: MySQL must not scale with the number of nodes")
    for store in ("cassandra", "hbase"):
        efficiency = _growth(data, store) / _scale_span(data, store)
        if efficiency < 0.5:
            v.append(f"fig12: {store} should keep scaling near-linearly")
    return v


def check_scan_latency_rs(data: FigureData) -> list[str]:
    """Figure 13 claims."""
    v: list[str] = []
    if _last(data, "mysql") < 1000:
        v.append("fig13: sharded MySQL scans should reach seconds")
    cassandra = _last(data, "cassandra")
    if not 5 <= cassandra <= 120:
        v.append(f"fig13: Cassandra scans should sit in the tens of ms "
                 f"(got {cassandra:.1f})")
    if _last(data, "redis") > _last(data, "hbase"):
        v.append("fig13: Redis scans should be far below HBase's")
    return v


def check_throughput_rsw(data: FigureData) -> list[str]:
    """Figure 14 claims (Section 5.5)."""
    v: list[str] = []
    singles = {s: _first(data, s) for s in data.series}
    if max(singles, key=singles.get) != "voltdb":
        v.append("fig14: VoltDB should have the best 1-node throughput")
    # MySQL collapses under RSW at every scale — already degraded on one
    # node (the paper measures 20 ops/s there) and far below the
    # scalable stores at the largest scale.
    if _first(data, "mysql") > 0.5 * _first(data, "cassandra"):
        v.append("fig14: MySQL should already be degraded at one node")
    if _last(data, "mysql") > 0.05 * _last(data, "cassandra"):
        v.append("fig14: MySQL should collapse under RSW at scale")
    for store in ("cassandra", "hbase"):
        gain = _last(data, store) / max(1e-9, _first(data, store))
        if gain < 2:
            v.append(f"fig14: {store} should gain from the lower scan rate")
    return v


def _check_bounded(data: FigureData, queue_dominated: tuple[str, ...]
                   ) -> list[str]:
    """Figures 15/16 share one shape.

    Queue-dominated systems (Cassandra/MySQL at max load) shed most of
    their latency when the load is bounded ("decreases almost
    linearly"); for Voldemort and Redis "the bottleneck was probably not
    the query processing itself", so only small reductions are expected
    — we merely require their latency not to rise.
    """
    v: list[str] = []
    for store, points in data.series.items():
        lowest_load = points[0][1]
        max_load = points[-1][1]
        if store in queue_dominated:
            if lowest_load > 0.7 * max_load:
                v.append(f"{data.figure_id}: {store} latency should drop "
                         "substantially under bounded load "
                         f"(got {lowest_load:.0f}% of max)")
        elif lowest_load > max_load * 1.02:
            v.append(f"{data.figure_id}: {store} latency should not rise "
                     "as load is reduced")
    return v


def check_bounded_read(data: FigureData) -> list[str]:
    """Figure 15: read latency under bounded load.

    Cassandra and HBase serve reads from saturated server queues, so
    bounding the load collapses their measured latency; the client-bound
    sharded stores only show mild reductions.
    """
    return _check_bounded(data, ("cassandra", "hbase"))


def check_bounded_write(data: FigureData) -> list[str]:
    """Figure 16: write latency under bounded load.

    Only Cassandra's write path is server-queue-dominated; HBase writes
    are client-buffered and barely move.
    """
    return _check_bounded(data, ("cassandra",))


def check_disk_usage(data: FigureData) -> list[str]:
    """Figure 17 claims (Section 5.7)."""
    v: list[str] = []
    finals = {s: _last(data, s) for s in data.series}
    order = ["raw data", "cassandra", "mysql", "voldemort", "hbase"]
    for lighter, heavier in zip(order, order[1:]):
        if finals[lighter] >= finals[heavier]:
            v.append(f"fig17: {lighter} should use less disk than {heavier}")
    blowup = finals["hbase"] / finals["raw data"]
    if not 7 <= blowup <= 13:
        v.append(f"fig17: HBase should use ~10x the raw size "
                 f"(got {blowup:.1f}x)")
    cassandra_pn = _last(data, "cassandra") / data.max_x()
    if not 2.0 <= cassandra_pn <= 3.2:
        v.append(f"fig17: Cassandra should store ~2.5 GB per node "
                 f"(got {cassandra_pn:.2f})")
    return v


def check_cluster_d_throughput(data: FigureData) -> list[str]:
    """Figure 18 claims (Section 5.8)."""
    v: list[str] = []
    for store, least, most in (("cassandra", 8, 80), ("hbase", 5, 60),
                               ("voldemort", 1.5, 12)):
        w_over_r = (data.series_value(store, 2.0)
                    / max(1e-9, data.series_value(store, 0.0)))
        if not least <= w_over_r <= most:
            v.append(f"fig18: {store} W/R throughput gain on Cluster D "
                     f"was {w_over_r:.1f}, expected {least}-{most}")
    return v


def check_cluster_d_read(data: FigureData) -> list[str]:
    """Figure 19: read latencies in the tens of ms; Voldemort lowest."""
    v: list[str] = []
    vold = data.series_value("voldemort", 0.0)
    cass = data.series_value("cassandra", 0.0)
    if not vold < cass:
        v.append("fig19: Voldemort should have the lowest read latency "
                 "on Cluster D")
    if not 5 <= cass <= 300:
        v.append(f"fig19: Cassandra read latency on Cluster D should be "
                 f"tens of ms (got {cass:.1f})")
    return v


def check_cluster_d_write(data: FigureData) -> list[str]:
    """Figure 20: HBase write latency well below 1 ms on Cluster D."""
    v: list[str] = []
    hbase_w = data.series_value("hbase", 2.0)
    if hbase_w is None or hbase_w > 30:
        v.append("fig20: HBase write latency should stay low on Cluster D")
    return v


def check_table1(data: FigureData) -> list[str]:
    """Table 1: sampled mixes within 2 points of the specification."""
    v: list[str] = []
    for name in ("R", "RW", "W", "RS", "RSW"):
        for op in ("read", "scan", "insert"):
            nominal = data.series.get(f"{name}/{op}", [(0, 0.0)])[0][1]
            sampled = data.series.get(f"{name}/{op}/sampled",
                                      [(0, 0.0)])[0][1]
            if abs(nominal - sampled) > 2.0:
                v.append(f"table1: workload {name} op {op} sampled "
                         f"{sampled:.1f}% vs nominal {nominal:.1f}%")
    return v


EXPECTATIONS: dict[str, Callable[[FigureData], list[str]]] = {
    "table1": check_table1,
    "fig3": check_throughput_r,
    "fig4": check_read_latency_r,
    "fig5": check_write_latency_r,
    "fig6": check_throughput_rw,
    "fig9": check_throughput_w,
    "fig10": check_read_latency_w,
    "fig11": check_write_latency_w,
    "fig12": check_throughput_rs,
    "fig13": check_scan_latency_rs,
    "fig14": check_throughput_rsw,
    "fig15": check_bounded_read,
    "fig16": check_bounded_write,
    "fig17": check_disk_usage,
    "fig18": check_cluster_d_throughput,
    "fig19": check_cluster_d_read,
    "fig20": check_cluster_d_write,
}


def check_expectations(data: FigureData) -> list[str]:
    """Violations of the paper's claims for ``data`` (empty = pass)."""
    checker = EXPECTATIONS.get(data.figure_id)
    if checker is None:
        return []
    return checker(data)
