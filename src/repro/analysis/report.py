"""ASCII rendering of regenerated figures.

The harness prints the same rows/series the paper plots; these helpers
format them as aligned tables (and a coarse ASCII chart for quick visual
shape checks in a terminal).
"""

from __future__ import annotations

import math

from repro.analysis.figures import FigureData

__all__ = ["render_table", "render_chart", "render_figure"]


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.3f}"


def render_table(data: FigureData) -> str:
    """The figure's series as an aligned table, one row per x value."""
    xs = sorted({x for pts in data.series.values() for x, __ in pts})
    names = list(data.series)
    header = [data.x_label[:14]] + names
    rows = [header]
    for x in xs:
        row = [_format_value(x)]
        for name in names:
            value = data.series_value(name, x)
            row.append(_format_value(value) if value is not None else "-")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = [f"{data.figure_id}: {data.title}  [{data.y_label}]"]
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(row, widths)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for note in data.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_chart(data: FigureData, width: int = 60, height: int = 16) -> str:
    """A coarse ASCII scatter of the series (log y if the figure is)."""
    points = [(x, y) for pts in data.series.values() for x, y in pts
              if y > 0 or not data.log_y]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]

    def ty(value: float) -> float:
        return math.log10(max(value, 1e-9)) if data.log_y else value

    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ty(y) for y in ys), max(ty(y) for y in ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for __ in range(height)]
    markers = "ABCDEFGHIJ"
    legend = []
    for index, (name, pts) in enumerate(data.series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"{marker}={name}")
        for x, y in pts:
            if data.log_y and y <= 0:
                continue
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((ty(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = [f"{data.figure_id}: {data.title}"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append("  " + "  ".join(legend))
    return "\n".join(lines)


def render_figure(data: FigureData, chart: bool = False) -> str:
    """Table plus (optionally) the ASCII chart."""
    out = render_table(data)
    if chart:
        out += "\n\n" + render_chart(data)
    return out
