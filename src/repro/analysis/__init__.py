"""Experiment regeneration: every table and figure of the paper.

* :mod:`repro.analysis.cache` — memoises benchmark runs so that figures
  sharing the same runs (e.g. Figures 3/4/5 all come from the Workload R
  sweep) execute each configuration once.
* :mod:`repro.analysis.figures` — one builder per paper artefact
  (``table1``, ``fig3`` ... ``fig20``), each returning a
  :class:`~repro.analysis.figures.FigureData` with the same series the
  paper plots.
* :mod:`repro.analysis.expectations` — the qualitative claims the paper
  makes about each figure, as checkable predicates.
* :mod:`repro.analysis.report` — ASCII rendering of figure data.
"""

from repro.analysis.cache import ResultCache
from repro.analysis.figures import (
    FIGURES,
    FigureData,
    build_figure,
)
from repro.analysis.expectations import check_expectations

__all__ = [
    "FIGURES",
    "FigureData",
    "ResultCache",
    "build_figure",
    "check_expectations",
]
