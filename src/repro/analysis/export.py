"""Exporting regenerated figures as machine-readable artefacts.

Figure data can be written to JSON (for plotting with any external tool)
or CSV (one row per point).  The JSON layout is stable:

.. code-block:: json

    {
      "figure_id": "fig3",
      "title": "Throughput for Workload R",
      "x_label": "Number of Nodes",
      "y_label": "Throughput (Operations/sec)",
      "log_y": false,
      "series": {"cassandra": [[1, 25860.7], [4, 72156.8]]},
      "notes": []
    }
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.analysis.figures import FigureData
from repro.analysis.provenance import stamp

__all__ = ["figure_to_json", "figure_to_csv", "write_figure",
           "load_figure"]


def figure_to_json(data: FigureData, indent: int = 2,
                   config=None, seed=None) -> str:
    """The figure as a JSON document.

    Every export carries a ``provenance`` stamp (package version, plus
    the config hash and seed when the producing configuration is
    passed), so artefacts stay traceable across runs and refactors.
    """
    payload = {
        "figure_id": data.figure_id,
        "title": data.title,
        "x_label": data.x_label,
        "y_label": data.y_label,
        "log_y": data.log_y,
        "series": {name: [[x, y] for x, y in points]
                   for name, points in data.series.items()},
        "notes": list(data.notes),
    }
    return json.dumps(stamp(payload, config, seed), indent=indent)


def figure_to_csv(data: FigureData) -> str:
    """The figure as CSV: ``series,x,y`` rows with a header."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["series", data.x_label, data.y_label])
    for name, points in data.series.items():
        for x, y in points:
            writer.writerow([name, x, y])
    return buffer.getvalue()


def write_figure(data: FigureData, directory: str | Path,
                 formats: tuple[str, ...] = ("json", "csv"),
                 config=None, seed=None) -> list[Path]:
    """Write the figure under ``directory``; returns the paths written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    if "json" in formats:
        path = directory / f"{data.figure_id}.json"
        path.write_text(figure_to_json(data, config=config, seed=seed))
        written.append(path)
    if "csv" in formats:
        path = directory / f"{data.figure_id}.csv"
        path.write_text(figure_to_csv(data))
        written.append(path)
    return written


def load_figure(path: str | Path) -> FigureData:
    """Read a figure back from its JSON export."""
    payload = json.loads(Path(path).read_text())
    return FigureData(
        figure_id=payload["figure_id"],
        title=payload["title"],
        x_label=payload["x_label"],
        y_label=payload["y_label"],
        log_y=payload.get("log_y", False),
        series={name: [(float(x), float(y)) for x, y in points]
                for name, points in payload["series"].items()},
        notes=list(payload.get("notes", [])),
    )
