"""The benchmark record model.

Section 3: "Our data set consists of records with a single alphanumeric key
with a length of 25 bytes and 5 value fields each with 10 bytes.  Thus, a
single record has a raw size of 75 bytes."

A :class:`RecordSchema` captures that shape; :class:`Record` is one row.
The APM measurement of Figure 2 (metric name, value, min, max, timestamp,
duration) maps onto the same five-field layout, which is exactly the
mapping the paper performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = ["RecordSchema", "Record", "APM_SCHEMA"]


@dataclass(frozen=True)
class RecordSchema:
    """Shape of the benchmark records."""

    key_length: int = 25
    field_count: int = 5
    field_length: int = 10
    field_prefix: str = "field"

    @property
    def field_names(self) -> tuple[str, ...]:
        """The ordered field names (``field0`` ... ``fieldN``)."""
        return tuple(f"{self.field_prefix}{i}" for i in range(self.field_count))

    @property
    def raw_record_bytes(self) -> int:
        """Raw payload size of one record: key plus all field values."""
        return self.key_length + self.field_count * self.field_length

    @property
    def raw_value_bytes(self) -> int:
        """Raw payload size of the value fields only (no key)."""
        return self.field_count * self.field_length

    def validate(self, record: "Record") -> None:
        """Raise ``ValueError`` if ``record`` does not match this schema."""
        if len(record.key) != self.key_length:
            raise ValueError(
                f"key {record.key!r} has length {len(record.key)}, "
                f"schema requires {self.key_length}"
            )
        if set(record.fields) != set(self.field_names):
            raise ValueError(
                f"record fields {sorted(record.fields)} do not match "
                f"schema fields {sorted(self.field_names)}"
            )
        for name, value in record.fields.items():
            if len(value) != self.field_length:
                raise ValueError(
                    f"field {name} has length {len(value)}, schema "
                    f"requires {self.field_length}"
                )


#: The paper's data set: 25-byte keys, five 10-byte fields, 75 raw bytes.
APM_SCHEMA = RecordSchema()


@dataclass(frozen=True)
class Record:
    """One benchmark row: a key plus named field values."""

    key: str
    fields: Mapping[str, str] = field(default_factory=dict)

    @property
    def raw_size(self) -> int:
        """Raw payload bytes: key length plus field value lengths."""
        return len(self.key) + sum(len(v) for v in self.fields.values())

    def subset(self, field_names: Iterable[str]) -> "Record":
        """A record carrying only the requested fields."""
        names = set(field_names)
        return Record(self.key, {k: v for k, v in self.fields.items()
                                 if k in names})

    def merged_with(self, other: "Record") -> "Record":
        """Column-wise merge, ``other`` winning on conflicts.

        This is the LSM read-repair semantic: newer cell values override
        older ones field by field.
        """
        if other.key != self.key:
            raise ValueError("cannot merge records with different keys")
        merged = dict(self.fields)
        merged.update(other.fields)
        return Record(self.key, merged)
