"""Byte-accurate on-disk record encodings per store.

Section 5.7 of the paper measures the on-disk footprint of 10 M loaded
records per node (Figure 17): Cassandra ~2.5 GB, MySQL ~5 GB (half without
the binlog), Project Voldemort ~5.5 GB, HBase ~7.5 GB — versus 0.7 GB of
raw data.  "The high increase of the disk usage compared to the raw data is
due to the additional schema as well as version information that is stored
with each key-value pair."

This module reconstructs that bookkeeping: each serializer emits the actual
byte layout the store writes per record (headers, per-cell qualifiers,
timestamps, transaction ids, vector clocks, SQL statement text), and each
:class:`DiskUsageModel` combines entry bytes with the structural overheads
(page fill factors, log-cleaner utilisation, retained WALs, block indexes)
that are documented for the benchmarked versions.  The models are *derived*,
not fitted: every constant is traceable to the store's storage format.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.storage.record import APM_SCHEMA, Record, RecordSchema

__all__ = [
    "encode_sstable_row",
    "encode_hfile_cells",
    "encode_bdb_entry",
    "encode_innodb_row",
    "encode_binlog_event",
    "DiskUsageModel",
    "CassandraDiskUsage",
    "HBaseDiskUsage",
    "VoldemortDiskUsage",
    "MySQLDiskUsage",
    "redis_memory_per_record",
    "voltdb_memory_per_record",
    "DISK_USAGE_MODELS",
]


def _utf8(value: str) -> bytes:
    return value.encode("utf-8")


# ---------------------------------------------------------------------------
# Cassandra: SSTable row (0.x/1.0 "big" format)
# ---------------------------------------------------------------------------

def encode_sstable_row(record: Record) -> bytes:
    """One Cassandra SSTable data-file row for ``record``.

    Layout (Cassandra 1.0 ``-Data.db``): 2-byte key length + key, 8-byte
    row size, 4-byte local deletion time, 8-byte marked-for-delete
    timestamp, 4-byte column count, then per column: 2-byte name length +
    name, 1-byte flags, 8-byte timestamp, 4-byte value length + value.
    """
    key = _utf8(record.key)
    columns = b""
    for name in sorted(record.fields):
        cname = _utf8(name)
        value = _utf8(record.fields[name])
        columns += struct.pack(">H", len(cname)) + cname
        columns += b"\x00"  # column flags (live column)
        columns += struct.pack(">q", 0)  # write timestamp (micros)
        columns += struct.pack(">i", len(value)) + value
    body = (
        struct.pack(">iq", 0x7FFFFFFF, -(2**63))  # deletion info (live row)
        + struct.pack(">i", len(record.fields))
        + columns
    )
    return struct.pack(">H", len(key)) + key + struct.pack(">q", len(body)) + body


# ---------------------------------------------------------------------------
# HBase: HFile KeyValue cells — one cell per field
# ---------------------------------------------------------------------------

def encode_hfile_cells(record: Record, family: str = "f") -> bytes:
    """The HFile ``KeyValue`` cells for ``record`` (one per column).

    Layout per cell: 4-byte key length, 4-byte value length, 2-byte row
    length + row key, 1-byte family length + family, qualifier, 8-byte
    timestamp, 1-byte key type, then the value.  The full row key, family
    and timestamp are repeated in *every* cell — the core reason HBase's
    footprint is ~10x raw data for 75-byte records.
    """
    row = _utf8(record.key)
    fam = _utf8(family)
    out = b""
    for name in sorted(record.fields):
        qualifier = _utf8(name)
        value = _utf8(record.fields[name])
        cell_key = (
            struct.pack(">H", len(row)) + row
            + struct.pack("B", len(fam)) + fam
            + qualifier
            + struct.pack(">q", 0)  # timestamp
            + b"\x04"  # key type: Put
        )
        out += struct.pack(">ii", len(cell_key), len(value)) + cell_key + value
    return out


# ---------------------------------------------------------------------------
# Voldemort: BerkeleyDB JE log entry with a vector-clock-versioned value
# ---------------------------------------------------------------------------

def encode_bdb_entry(record: Record, replica_count: int = 1) -> bytes:
    """One BerkeleyDB-JE log entry holding a Voldemort versioned value.

    Layout: JE log-entry header (checksum 4, type 1, flags 1, prev-offset
    4, size 4, VLSN 8 = 22 bytes), 1-byte key length + key, 4-byte data
    size, then the Voldemort payload: a vector clock (2-byte entry count,
    then per replica 2-byte node id + 8-byte version, plus an 8-byte
    timestamp) followed by the field map serialisation (2-byte name length
    + name, 4-byte value length + value, per field).
    """
    key = _utf8(record.key)
    clock = struct.pack(">H", replica_count)
    for node_id in range(replica_count):
        clock += struct.pack(">Hq", node_id, 1)
    clock += struct.pack(">q", 0)  # clock timestamp
    payload = clock
    for name in sorted(record.fields):
        cname = _utf8(name)
        value = _utf8(record.fields[name])
        payload += struct.pack(">H", len(cname)) + cname
        payload += struct.pack(">i", len(value)) + value
    header = struct.pack(">iBBiiq", 0, 1, 0, 0, len(payload), 0)
    return header + struct.pack("B", len(key)) + key + struct.pack(
        ">i", len(payload)
    ) + payload


# ---------------------------------------------------------------------------
# MySQL: InnoDB compact row + statement-based binlog event
# ---------------------------------------------------------------------------

def encode_innodb_row(record: Record) -> bytes:
    """One InnoDB COMPACT-format clustered-index row for ``record``.

    Layout: variable-length header (1 byte per varchar column), 1-byte
    null bitmap, 5-byte record header, 6-byte transaction id, 7-byte roll
    pointer, then the primary key and the field values.
    """
    n_varchar = 1 + len(record.fields)  # key + each field is VARCHAR
    var_lengths = bytes(
        [len(record.key)] + [len(record.fields[n]) for n in sorted(record.fields)]
    )
    assert len(var_lengths) == n_varchar
    header = var_lengths + b"\x00" + b"\x00" * 5  # null bitmap + rec header
    system = b"\x00" * 6 + b"\x00" * 7  # DB_TRX_ID + DB_ROLL_PTR
    body = _utf8(record.key) + b"".join(
        _utf8(record.fields[n]) for n in sorted(record.fields)
    )
    return header + system + body


def encode_binlog_event(record: Record, table: str = "usertable") -> bytes:
    """A statement-based binlog Query event for inserting ``record``.

    MySQL 5.5 defaults to statement-based replication: the binlog stores
    the full SQL text plus a 19-byte common event header and status/
    database context — which is why enabling the binlog doubles MySQL's
    footprint in Figure 17.
    """
    fields = sorted(record.fields)
    columns = ", ".join(["ycsb_key"] + fields)
    values = ", ".join(
        [f"'{record.key}'"] + [f"'{record.fields[f]}'" for f in fields]
    )
    statement = f"INSERT INTO {table} ({columns}) VALUES ({values})"
    event_header = b"\x00" * 19
    status_block = b"\x00" * 14  # status vars + db name + terminator
    # Each statement is preceded by context events (SET TIMESTAMP / Intvar)
    # sharing the same 19-byte header format.
    context_events = b"\x00" * (19 + 8) + b"\x00" * (19 + 4)
    return context_events + event_header + status_block + _utf8(statement)


# ---------------------------------------------------------------------------
# Disk-usage models: entry bytes x structural overheads
# ---------------------------------------------------------------------------

def _sample_record(schema: RecordSchema) -> Record:
    key = "u" * schema.key_length
    fields = {name: "v" * schema.field_length for name in schema.field_names}
    return Record(key, fields)


@dataclass(frozen=True)
class DiskUsageModel:
    """Computes per-node disk bytes after loading ``n_records``."""

    name: str

    def bytes_per_record(self, schema: RecordSchema = APM_SCHEMA) -> float:
        """Steady-state on-disk bytes attributable to one record."""
        raise NotImplementedError

    def node_bytes(self, n_records: int,
                   schema: RecordSchema = APM_SCHEMA) -> float:
        """Total bytes on one node holding ``n_records``."""
        return self.bytes_per_record(schema) * n_records


@dataclass(frozen=True)
class CassandraDiskUsage(DiskUsageModel):
    """SSTable data + per-row index entry + bloom filter share."""

    name: str = "cassandra"
    #: -Index.db: 2-byte key length + key + 8-byte data offset.
    index_overhead_per_row: int = 2 + 25 + 8
    #: Bloom filter bits per key (~10 bits/key at 1% FP).
    bloom_bytes_per_row: float = 1.25
    #: Space amplification from not-yet-compacted duplicate rows after a
    #: bulk load with size-tiered compaction.
    space_amplification: float = 1.15

    def bytes_per_record(self, schema: RecordSchema = APM_SCHEMA) -> float:
        entry = len(encode_sstable_row(_sample_record(schema)))
        per_row = entry + self.index_overhead_per_row + self.bloom_bytes_per_row
        return per_row * self.space_amplification


@dataclass(frozen=True)
class HBaseDiskUsage(DiskUsageModel):
    """HFile cells + retained WAL + HDFS checksums + block indexes."""

    name: str = "hbase"
    #: HLog retains one WALEdit copy of every cell until log roll + flush
    #: catch up; after a pure load phase the logs are still on disk.
    wal_retained_fraction: float = 1.0
    #: HDFS CRC32 checksum: 4 bytes per 512-byte chunk.
    checksum_overhead: float = 4 / 512
    #: HFile block index + bloom + region/store metadata share per row.
    index_bytes_per_row: float = 25.0
    #: Duplicate cells across store files before major compaction.
    space_amplification: float = 1.30

    def bytes_per_record(self, schema: RecordSchema = APM_SCHEMA) -> float:
        record = _sample_record(schema)
        cells = len(encode_hfile_cells(record))
        wal = cells * self.wal_retained_fraction
        base = (cells * self.space_amplification + wal
                + self.index_bytes_per_row)
        return base * (1.0 + self.checksum_overhead)


@dataclass(frozen=True)
class VoldemortDiskUsage(DiskUsageModel):
    """BDB-JE append-only log with cleaner utilisation + B-tree INs."""

    name: str = "voldemort"
    #: Internal (branch) node bytes amortised per leaf record in JE logs.
    btree_in_bytes_per_record: float = 62.0
    #: JE cleans logs lazily; 50% utilisation is the JE default target,
    #: so live data occupies about half of the on-disk log space.
    log_utilisation: float = 0.45

    def bytes_per_record(self, schema: RecordSchema = APM_SCHEMA) -> float:
        entry = len(encode_bdb_entry(_sample_record(schema)))
        return (entry + self.btree_in_bytes_per_record) / self.log_utilisation


@dataclass(frozen=True)
class MySQLDiskUsage(DiskUsageModel):
    """InnoDB clustered index pages + undo/system share + binlog."""

    name: str = "mysql"
    binlog_enabled: bool = True
    page_size: int = 16384
    page_metadata: int = 128 + 8 + 36  # FIL header/trailer + page header
    #: Random-order PK inserts leave B+tree pages ~50-70% full; the
    #: uniformly random 25-byte YCSB keys sit at the low end.
    page_fill_factor: float = 0.50
    #: Undo log retention, insert buffer, doublewrite and ibdata system
    #: pages, as a fraction of table bytes (MySQL 5.5 defaults).
    system_overhead: float = 0.18

    def bytes_per_record(self, schema: RecordSchema = APM_SCHEMA) -> float:
        record = _sample_record(schema)
        row = len(encode_innodb_row(record)) + 2  # + page directory slot share
        usable = self.page_size - self.page_metadata
        rows_per_page = max(1, int(usable * self.page_fill_factor / row))
        table_bytes = self.page_size / rows_per_page
        total = table_bytes * (1.0 + self.system_overhead)
        if self.binlog_enabled:
            total += len(encode_binlog_event(record))
        return total


# ---------------------------------------------------------------------------
# In-memory stores: RAM footprint (Redis OOM analysis, VoltDB sizing)
# ---------------------------------------------------------------------------

def redis_memory_per_record(schema: RecordSchema = APM_SCHEMA) -> float:
    """Resident bytes per record in Redis 2.4 (hash + sorted-set entry).

    YCSB's Redis client stores each record as a hash of its fields *and*
    inserts the key into one global sorted set used for scans.  Per record:
    a main-dict entry (key object + dictEntry + robj), five hash-field
    entries, and a skiplist node + dict entry in the index zset.
    """
    key_obj = 16 + schema.key_length + 1 + 24  # sds hdr + key + robj
    dict_entry = 24
    hash_overhead = 64  # dict struct share for a small hash
    per_field = (16 + 6 + 1 + 24) + (16 + schema.field_length + 1 + 24) + 24
    zset_entry = 24 + 40 + key_obj  # dictEntry + skiplist node + shared key
    return (key_obj + dict_entry + hash_overhead
            + per_field * schema.field_count + zset_entry)


def voltdb_memory_per_record(schema: RecordSchema = APM_SCHEMA) -> float:
    """Resident bytes per record in VoltDB's row store + PK index."""
    tuple_bytes = 1 + 8 + schema.raw_record_bytes + 4 * (schema.field_count + 1)
    index_bytes = 40 + schema.key_length  # balanced-tree node + key copy
    return tuple_bytes + index_bytes


#: Figure 17 plots exactly these four disk-backed systems.
DISK_USAGE_MODELS: dict[str, DiskUsageModel] = {
    "cassandra": CassandraDiskUsage(),
    "hbase": HBaseDiskUsage(),
    "voldemort": VoldemortDiskUsage(),
    "mysql": MySQLDiskUsage(),
}
