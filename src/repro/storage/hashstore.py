"""In-memory hash + sorted-set store (the Redis data model).

YCSB's Redis binding stores each record as a Redis *hash* keyed by the
record key and additionally indexes every key in one global *sorted set*
so that scans are possible.  This module reproduces that layout: a Python
dict of field-maps plus a skip list of keys (Redis's own zset is also a
skip list), with jemalloc-style memory accounting used by the Redis
out-of-memory analysis of Section 5.1.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.storage.encoding import redis_memory_per_record
from repro.storage.record import APM_SCHEMA, RecordSchema
from repro.storage.skiplist import SkipList

__all__ = ["HashStore"]


class HashStore:
    """A single Redis-like node's keyspace."""

    def __init__(self, schema: RecordSchema = APM_SCHEMA,
                 max_memory_bytes: Optional[int] = None, seed: int = 0):
        self.schema = schema
        self.max_memory_bytes = max_memory_bytes
        self._hashes: dict[str, dict[str, str]] = {}
        self._index = SkipList(seed=seed)
        self._bytes_per_record = redis_memory_per_record(schema)
        self.evictions = 0
        self.oom_errors = 0

    def __len__(self) -> int:
        return len(self._hashes)

    @property
    def used_memory_bytes(self) -> float:
        """Estimated resident set of the keyspace."""
        return len(self._hashes) * self._bytes_per_record

    @property
    def is_full(self) -> bool:
        """Whether the next insert would exceed ``max_memory_bytes``."""
        if self.max_memory_bytes is None:
            return False
        return (self.used_memory_bytes + self._bytes_per_record
                > self.max_memory_bytes)

    def hset(self, key: str, fields: Mapping[str, str]) -> bool:
        """HMSET + ZADD: store the record and index its key.

        Returns ``False`` (and counts an OOM error) when the memory limit
        is reached and the key is new — the failure mode the paper hit on
        its hottest Redis shard at 12 nodes.
        """
        is_new = key not in self._hashes
        if is_new and self.is_full:
            self.oom_errors += 1
            return False
        if is_new:
            self._index.put(key, None)
            self._hashes[key] = dict(fields)
        else:
            self._hashes[key].update(fields)
        return True

    def hgetall(self, key: str) -> Optional[dict[str, str]]:
        """Fetch all fields of a record."""
        fields = self._hashes.get(key)
        return dict(fields) if fields is not None else None

    def zrange_from(self, start_key: str, count: int) -> list[str]:
        """Keys >= ``start_key`` in order (ZRANGEBYLEX on the index)."""
        return [key for key, __ in self._index.scan(start_key, count)]

    def scan(self, start_key: str, count: int) -> list[tuple[str, dict[str, str]]]:
        """Range scan via the key index, then per-key HGETALL."""
        out = []
        for key in self.zrange_from(start_key, count):
            fields = self._hashes.get(key)
            if fields is not None:
                out.append((key, dict(fields)))
        return out

    def delete(self, key: str) -> bool:
        """DEL + ZREM; returns whether the key existed."""
        if key not in self._hashes:
            return False
        del self._hashes[key]
        self._index.remove(key)
        return True
