"""A skip list: the sorted map behind the LSM memtable.

Cassandra's memtable is a concurrent skip list; we implement the classic
Pugh structure with geometric level promotion.  It supports point get/put,
deletion, in-order iteration, and bounded range scans — everything the
memtable and the Redis sorted-set model need.

Determinism: the level generator is seeded per instance so simulations are
bit-for-bit reproducible.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, Optional

__all__ = ["SkipList"]

_MAX_LEVEL = 32
_P = 0.25


class _SkipNode:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Any, value: Any, level: int):
        self.key = key
        self.value = value
        self.forward: list[Optional["_SkipNode"]] = [None] * level


class SkipList:
    """A sorted map with expected O(log n) search/insert."""

    def __init__(self, seed: int = 0):
        self._head = _SkipNode(None, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0
        self._rng = random.Random(seed)

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        return self.get(key, default=_MISSING) is not _MISSING

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def _find_predecessors(self, key: Any) -> list[_SkipNode]:
        update = [self._head] * _MAX_LEVEL
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while node.forward[level] is not None and node.forward[level].key < key:
                node = node.forward[level]
            update[level] = node
        return update

    def put(self, key: Any, value: Any) -> bool:
        """Insert or update; returns ``True`` if the key was new."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is not None and node.key == key:
            node.value = value
            return False
        level = self._random_level()
        if level > self._level:
            self._level = level
        new_node = _SkipNode(key, value, level)
        for i in range(level):
            new_node.forward[i] = update[i].forward[i]
            update[i].forward[i] = new_node
        self._size += 1
        return True

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value for ``key`` or ``default``."""
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while node.forward[level] is not None and node.forward[level].key < key:
                node = node.forward[level]
        node = node.forward[0]
        if node is not None and node.key == key:
            return node.value
        return default

    def remove(self, key: Any) -> bool:
        """Delete ``key``; returns ``True`` if it was present."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is None or node.key != key:
            return False
        for i in range(self._level):
            if update[i].forward[i] is not node:
                break
            update[i].forward[i] = node.forward[i]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1
        return True

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All ``(key, value)`` pairs in key order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def scan(self, start_key: Any, count: int) -> list[tuple[Any, Any]]:
        """Up to ``count`` pairs with ``key >= start_key``, in key order."""
        if count <= 0:
            return []
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while (node.forward[level] is not None
                   and node.forward[level].key < start_key):
                node = node.forward[level]
        node = node.forward[0]
        out: list[tuple[Any, Any]] = []
        while node is not None and len(out) < count:
            out.append((node.key, node.value))
            node = node.forward[0]
        return out

    def first_key(self) -> Any:
        """Smallest key, or ``None`` when empty."""
        node = self._head.forward[0]
        return node.key if node is not None else None

    def last_key(self) -> Any:
        """Largest key, or ``None`` when empty (O(n))."""
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while node.forward[level] is not None:
                node = node.forward[level]
        return node.key if node is not self._head else None


_MISSING = object()
