"""Storage engine substrates.

Functional, from-scratch implementations of the data structures the six
benchmarked stores are built on:

* :mod:`repro.storage.record` — the benchmark record (25-byte key, five
  10-byte fields; Section 3 / Figure 2).
* :mod:`repro.storage.skiplist` — probabilistic sorted map used as the
  LSM memtable.
* :mod:`repro.storage.bloom` — Bloom filters guarding SSTable reads.
* :mod:`repro.storage.lsm` — log-structured merge engine (memtable,
  commit log, SSTables, size-tiered compaction) used by the Cassandra and
  HBase models.
* :mod:`repro.storage.btree` — B+tree engine used by the Voldemort
  (BerkeleyDB) and MySQL (InnoDB) models.
* :mod:`repro.storage.hashstore` — in-memory hash + sorted-set store used
  by the Redis model.
* :mod:`repro.storage.encoding` — byte-accurate on-disk record encodings
  per store, from which the Figure 17 disk-usage experiment is computed.
"""

from repro.storage.record import Record, RecordSchema, APM_SCHEMA

__all__ = ["Record", "RecordSchema", "APM_SCHEMA"]
