"""Bloom filters.

Every SSTable/HFile carries a Bloom filter so point reads can skip runs
that cannot contain the key — the mechanism that keeps LSM read
amplification bounded and that the ``bench_ablation_bloom`` experiment
switches off.
"""

from __future__ import annotations

import math
from hashlib import blake2b

__all__ = ["BloomFilter"]


class BloomFilter:
    """A classic k-hash Bloom filter over a bit array."""

    def __init__(self, expected_items: int, false_positive_rate: float = 0.01):
        if expected_items < 1:
            expected_items = 1
        if not 0.0 < false_positive_rate < 1.0:
            raise ValueError("false_positive_rate must be in (0, 1)")
        self.expected_items = expected_items
        self.false_positive_rate = false_positive_rate
        ln2 = math.log(2)
        self.n_bits = max(
            8, int(-expected_items * math.log(false_positive_rate) / (ln2 * ln2))
        )
        self.n_hashes = max(1, round((self.n_bits / expected_items) * ln2))
        self._bits = bytearray((self.n_bits + 7) // 8)
        self.n_items = 0

    @property
    def size_bytes(self) -> int:
        """On-disk footprint of the filter."""
        return len(self._bits)

    def _positions(self, key: str):
        # Kirsch–Mitzenmacher double hashing from one 16-byte digest.
        digest = blake2b(key.encode("utf-8"), digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1
        for i in range(self.n_hashes):
            yield (h1 + i * h2) % self.n_bits

    def add(self, key: str) -> None:
        """Insert ``key`` into the filter."""
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self.n_items += 1

    def might_contain(self, key: str) -> bool:
        """``False`` means definitely absent; ``True`` means probably present."""
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(key)
        )

    def estimated_fp_rate(self) -> float:
        """The theoretical false-positive rate at the current fill."""
        if self.n_items == 0:
            return 0.0
        fill = 1.0 - math.exp(-self.n_hashes * self.n_items / self.n_bits)
        return fill ** self.n_hashes
