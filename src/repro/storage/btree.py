"""A B+tree storage engine.

The update-in-place engine behind the Voldemort (BerkeleyDB JE) and MySQL
(InnoDB) models: a clustered B+tree whose leaves hold the records and are
linked for range scans.  The tree reports the *page path* each operation
touches, which the store layer feeds through the page-cache model — the
mechanism that separates the Cluster M (all pages cached) and Cluster D
(leaf reads miss) regimes.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Any, Iterator, Optional

__all__ = ["BPlusTree", "TreePath"]


_next_page_id = 0


def _new_page_id() -> int:
    global _next_page_id
    _next_page_id += 1
    return _next_page_id


class _Leaf:
    __slots__ = ("page_id", "keys", "values", "next")

    def __init__(self):
        self.page_id = _new_page_id()
        self.keys: list[Any] = []
        self.values: list[Any] = []
        self.next: Optional["_Leaf"] = None


class _Internal:
    __slots__ = ("page_id", "keys", "children")

    def __init__(self):
        self.page_id = _new_page_id()
        self.keys: list[Any] = []
        self.children: list[Any] = []


@dataclass
class TreePath:
    """Pages an operation descended through (root ... leaf)."""

    page_ids: tuple[int, ...]

    @property
    def depth(self) -> int:
        """Number of pages on the path."""
        return len(self.page_ids)


class BPlusTree:
    """An order-``order`` B+tree with linked leaves."""

    def __init__(self, order: int = 64):
        if order < 4:
            raise ValueError("order must be at least 4")
        self.order = order
        self._root: Any = _Leaf()
        self._size = 0
        self.height = 1
        self.n_leaves = 1
        self.n_internal = 0

    def __len__(self) -> int:
        return self._size

    @property
    def n_pages(self) -> int:
        """Total pages (leaves + internal nodes)."""
        return self.n_leaves + self.n_internal

    # -- search ---------------------------------------------------------------

    def _descend(self, key: Any) -> tuple[_Leaf, list[int], list[_Internal]]:
        node = self._root
        path: list[int] = []
        parents: list[_Internal] = []
        while isinstance(node, _Internal):
            path.append(node.page_id)
            parents.append(node)
            index = bisect_right(node.keys, key)
            node = node.children[index]
        path.append(node.page_id)
        return node, path, parents

    def get(self, key: Any) -> tuple[Optional[Any], TreePath]:
        """Point lookup; returns ``(value_or_None, pages_touched)``."""
        leaf, path, __ = self._descend(key)
        index = bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index], TreePath(tuple(path))
        return None, TreePath(tuple(path))

    def scan(self, start_key: Any, count: int) -> tuple[
            list[tuple[Any, Any]], TreePath]:
        """Up to ``count`` pairs with key >= ``start_key``, leaf-linked."""
        leaf, path, __ = self._descend(start_key)
        pages = list(path)
        out: list[tuple[Any, Any]] = []
        index = bisect_left(leaf.keys, start_key)
        node: Optional[_Leaf] = leaf
        while node is not None and len(out) < count:
            while index < len(node.keys) and len(out) < count:
                out.append((node.keys[index], node.values[index]))
                index += 1
            node = node.next
            index = 0
            if node is not None and len(out) < count:
                pages.append(node.page_id)
        return out, TreePath(tuple(pages))

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All pairs in key order."""
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next

    def leaf_page_ids(self) -> Iterator[int]:
        """Page ids of all leaves, left to right (cache warm-up)."""
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        while node is not None:
            yield node.page_id
            node = node.next

    # -- insert ---------------------------------------------------------------

    def put(self, key: Any, value: Any) -> tuple[bool, TreePath]:
        """Insert or update; returns ``(was_new, pages_touched)``."""
        leaf, path, parents = self._descend(key)
        index = bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            leaf.values[index] = value
            return False, TreePath(tuple(path))
        leaf.keys.insert(index, key)
        leaf.values.insert(index, value)
        self._size += 1
        if len(leaf.keys) > self.order:
            self._split_leaf(leaf, parents)
        return True, TreePath(tuple(path))

    def _split_leaf(self, leaf: _Leaf, parents: list[_Internal]) -> None:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        right.next = leaf.next
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        leaf.next = right
        self.n_leaves += 1
        self._insert_into_parent(leaf, right.keys[0], right, parents)

    def _insert_into_parent(self, left: Any, key: Any, right: Any,
                            parents: list[_Internal]) -> None:
        if not parents:
            root = _Internal()
            root.keys = [key]
            root.children = [left, right]
            self._root = root
            self.n_internal += 1
            self.height += 1
            return
        parent = parents[-1]
        index = bisect_right(parent.keys, key)
        parent.keys.insert(index, key)
        parent.children.insert(index + 1, right)
        if len(parent.keys) > self.order:
            self._split_internal(parent, parents[:-1])

    def _split_internal(self, node: _Internal,
                        parents: list[_Internal]) -> None:
        mid = len(node.keys) // 2
        promote = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        self.n_internal += 1
        self._insert_into_parent(node, promote, right, parents)

    # -- delete ---------------------------------------------------------------

    def remove(self, key: Any) -> tuple[bool, TreePath]:
        """Delete ``key`` if present (lazy: no rebalancing, like JE).

        Returns ``(was_present, pages_touched)``.
        """
        leaf, path, __ = self._descend(key)
        index = bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            leaf.keys.pop(index)
            leaf.values.pop(index)
            self._size -= 1
            return True, TreePath(tuple(path))
        return False, TreePath(tuple(path))
