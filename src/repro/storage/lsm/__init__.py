"""Log-structured merge-tree engine.

The write-optimised engine behind the Cassandra and HBase models: writes
append to a commit log and an in-memory memtable; full memtables flush to
immutable sorted runs (SSTables) guarded by Bloom filters; a size-tiered
compactor folds runs together in the background.  Reads consult the
memtable, then candidate SSTables newest-first.

This is the mechanism behind two headline paper results: the stores built
on it have the lowest write latencies and the highest sustained insert
throughput (Sections 5.3, 5.9), at the cost of read amplification.
"""

from repro.storage.lsm.memtable import Memtable
from repro.storage.lsm.wal import CommitLog
from repro.storage.lsm.sstable import SSTable, TOMBSTONE
from repro.storage.lsm.compaction import CompactionTask, SizeTieredCompaction
from repro.storage.lsm.engine import LSMEngine, LSMConfig

__all__ = [
    "CommitLog",
    "CompactionTask",
    "LSMConfig",
    "LSMEngine",
    "Memtable",
    "SSTable",
    "SizeTieredCompaction",
    "TOMBSTONE",
]
