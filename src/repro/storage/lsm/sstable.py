"""Immutable sorted string tables.

An SSTable is a sorted, immutable run of ``(key, fields)`` entries with a
Bloom filter and a binary-searchable index.  Deletions are represented by
the :data:`TOMBSTONE` sentinel so that compaction can drop shadowed data.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Union

from repro.storage.bloom import BloomFilter

__all__ = [
    "TOMBSTONE",
    "Versioned",
    "SSTable",
    "sstable_entry_size",
    "resolve_versions",
]


class _Tombstone:
    """Sentinel marking a deleted key inside a run."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TOMBSTONE"


TOMBSTONE = _Tombstone()

Payload = Union[Mapping[str, str], _Tombstone]


class Versioned:
    """A write's payload stamped with its global sequence number.

    Cassandra resolves conflicting cells by write timestamp, not by which
    run they live in; the sequence number plays that role here and makes
    reads correct regardless of how compaction reorders runs.
    """

    __slots__ = ("seq", "value")

    def __init__(self, seq: int, value: Payload):
        self.seq = seq
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Versioned(seq={self.seq}, value={self.value!r})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, Versioned) and self.seq == other.seq
                and self.value == other.value)


Value = Versioned


def resolve_versions(versions: Sequence[Versioned]) -> Versioned:
    """Fold candidate versions of one key into its current state.

    Versions are applied oldest-first: a tombstone wipes everything older;
    a field map upserts onto the surviving fields.  The result carries the
    highest sequence number seen.
    """
    if not versions:
        raise ValueError("resolve_versions requires at least one version")
    ordered = sorted(versions, key=lambda v: v.seq)
    current: Payload = TOMBSTONE
    for version in ordered:
        if version.value is TOMBSTONE:
            current = TOMBSTONE
        elif current is TOMBSTONE:
            current = dict(version.value)
        else:
            current = dict(current)
            current.update(version.value)
    return Versioned(ordered[-1].seq, current)


def sstable_entry_size(key: str, value: Payload) -> int:
    """On-disk bytes for one entry, per the Cassandra 1.0 row layout.

    Mirrors :func:`repro.storage.encoding.encode_sstable_row` arithmetically
    (2-byte key length + key, 8-byte row size, 12-byte deletion info,
    4-byte column count, then per column 2+name+1+8+4+value) so the hot
    path never materialises the byte string.
    """
    if isinstance(value, Versioned):
        value = value.value
    size = 2 + len(key) + 8 + 12 + 4
    if value is TOMBSTONE:
        return size
    for name, field_value in value.items():
        size += 2 + len(name) + 1 + 8 + 4 + len(field_value)
    return size


class SSTable:
    """One immutable sorted run."""

    _next_generation = 0

    def __init__(self, items: Iterable[tuple[str, Value]],
                 bloom_fp_rate: float = 0.01,
                 generation: Optional[int] = None):
        pairs = list(items)
        keys = [k for k, __ in pairs]
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("SSTable input must be strictly sorted by key")
        self._keys = keys
        self._values = [v for __, v in pairs]
        if generation is None:
            SSTable._next_generation += 1
            generation = SSTable._next_generation
        self.generation = generation
        self.bloom = BloomFilter(max(1, len(keys)), bloom_fp_rate)
        self.size_bytes = 0
        for key, value in pairs:
            self.bloom.add(key)
            self.size_bytes += sstable_entry_size(key, value)
        self.reads = 0
        self.bloom_rejections = 0

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def min_key(self) -> Optional[str]:
        """Smallest key in the run, or ``None`` if empty."""
        return self._keys[0] if self._keys else None

    @property
    def max_key(self) -> Optional[str]:
        """Largest key in the run, or ``None`` if empty."""
        return self._keys[-1] if self._keys else None

    def may_contain(self, key: str) -> bool:
        """Cheap pre-check: key range plus Bloom filter."""
        if not self._keys or key < self._keys[0] or key > self._keys[-1]:
            return False
        if not self.bloom.might_contain(key):
            self.bloom_rejections += 1
            return False
        return True

    def get(self, key: str) -> Optional[Value]:
        """Point lookup; ``None`` when absent, :data:`TOMBSTONE` if deleted."""
        self.reads += 1
        index = bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return self._values[index]
        return None

    def scan(self, start_key: str, count: int) -> list[tuple[str, Value]]:
        """Up to ``count`` entries with key >= ``start_key``."""
        index = bisect_left(self._keys, start_key)
        stop = min(len(self._keys), index + max(0, count))
        return list(zip(self._keys[index:stop], self._values[index:stop]))

    def items(self) -> Iterator[tuple[str, Value]]:
        """All entries in key order (compaction input)."""
        return iter(zip(self._keys, self._values))
