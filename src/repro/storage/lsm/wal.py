"""Commit log (write-ahead log) with group commit.

Both Cassandra and HBase acknowledge a write once it is in the commit log
and the memtable.  The log is append-only and *batched*: many writes share
one fsync ("group commit" / ``commitlog_sync: periodic``), which is the
mechanism behind the sub-millisecond write latencies in Figures 5/8/11 and
the subject of the group-commit ablation benchmark.

The class is purely functional (byte and segment accounting); the
simulated disk time for syncs is charged by the store layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CommitLog", "CommitLogSegment"]


@dataclass
class CommitLogSegment:
    """One on-disk log segment."""

    index: int
    size_bytes: int = 0
    entries: int = 0
    #: Serialised memtable flushes allow segments to be recycled.
    dirty: bool = True


@dataclass
class CommitLog:
    """Append-only, segment-rotated commit log."""

    segment_size_bytes: int = 32 * 2**20
    #: Writes buffered between fsyncs (group commit window); ``1``
    #: degenerates to sync-per-write (the ablation case).
    group_commit_ops: int = 64
    #: Fixed per-entry header: size + checksum + checksum-of-size.
    entry_header_bytes: int = 12

    segments: list[CommitLogSegment] = field(default_factory=list)
    appended_entries: int = 0
    appended_bytes: int = 0
    syncs: int = 0
    _unsynced_ops: int = field(default=0, repr=False)
    _unsynced_bytes: int = field(default=0, repr=False)

    def __post_init__(self):
        if self.group_commit_ops < 1:
            raise ValueError("group_commit_ops must be >= 1")
        self.segments.append(CommitLogSegment(0))

    @property
    def active_segment(self) -> CommitLogSegment:
        """The segment currently being appended to."""
        return self.segments[-1]

    @property
    def total_bytes(self) -> int:
        """Bytes across all retained segments."""
        return sum(s.size_bytes for s in self.segments)

    def append(self, payload_bytes: int) -> int:
        """Log one write of ``payload_bytes``.

        Returns the number of bytes this append must flush to disk *now*:
        zero while the group-commit window is still filling, or the whole
        pending batch when the window closes.
        """
        entry = payload_bytes + self.entry_header_bytes
        self.appended_entries += 1
        self.appended_bytes += entry
        segment = self.active_segment
        segment.size_bytes += entry
        segment.entries += 1
        if segment.size_bytes >= self.segment_size_bytes:
            self.segments.append(CommitLogSegment(segment.index + 1))
        self._unsynced_ops += 1
        self._unsynced_bytes += entry
        if self._unsynced_ops >= self.group_commit_ops:
            return self.force_sync()
        return 0

    @property
    def pending_ops(self) -> int:
        """Writes appended but not yet fsynced (lost if the node crashes)."""
        return self._unsynced_ops

    def discard_unsynced(self) -> int:
        """Crash semantics: the unsynced tail never reached the platter.

        Returns the number of writes lost.  This is exactly the window
        group commit trades for throughput — ``commitlog_sync: periodic``
        acknowledges writes the disk has not yet seen.
        """
        lost = self._unsynced_ops
        self.appended_entries -= self._unsynced_ops
        self.appended_bytes -= self._unsynced_bytes
        segment = self.active_segment
        segment.size_bytes = max(0, segment.size_bytes
                                 - self._unsynced_bytes)
        segment.entries = max(0, segment.entries - self._unsynced_ops)
        self._unsynced_ops = 0
        self._unsynced_bytes = 0
        return lost

    def force_sync(self) -> int:
        """Flush the pending batch; returns the bytes written to disk."""
        flushed = self._unsynced_bytes
        if flushed:
            self.syncs += 1
        self._unsynced_ops = 0
        self._unsynced_bytes = 0
        return flushed

    def mark_clean(self, up_to_segment: int) -> int:
        """Recycle segments <= ``up_to_segment`` after a memtable flush.

        Returns the number of bytes reclaimed.
        """
        reclaimed = 0
        kept = []
        for segment in self.segments:
            is_active = segment is self.active_segment
            if segment.index <= up_to_segment and not is_active:
                reclaimed += segment.size_bytes
            else:
                kept.append(segment)
        self.segments = kept
        return reclaimed
