"""The log-structured merge engine tying memtable, WAL and SSTables together.

The engine is purely functional: each mutating call returns an
:class:`IoBill` describing the disk work it implies, which the store layer
converts into simulated disk time.  This split keeps the data-structure
logic unit-testable without a simulator.

Conflict resolution uses per-write sequence numbers (``Versioned`` cells),
matching Cassandra's timestamp semantics: reads fold every candidate
version oldest-first, so correctness never depends on the order compaction
leaves the runs in.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.storage.lsm.compaction import CompactionTask, SizeTieredCompaction
from repro.storage.lsm.memtable import Memtable
from repro.storage.lsm.sstable import (
    SSTable,
    TOMBSTONE,
    Versioned,
    resolve_versions,
    sstable_entry_size,
)
from repro.storage.lsm.wal import CommitLog

__all__ = ["IoBill", "LSMConfig", "LSMEngine", "ReadResult"]


@dataclass
class IoBill:
    """Disk work implied by one engine call."""

    wal_sync_bytes: int = 0
    flush_write_bytes: int = 0
    compaction_io_bytes: int = 0
    #: Number of distinct on-disk runs a read had to consult (0 for
    #: memtable-only reads).
    runs_touched: int = 0
    #: Block ids the read touched, for the page-cache model.
    blocks: tuple = ()


@dataclass
class ReadResult:
    """Outcome of a point read."""

    fields: Optional[Mapping[str, str]]
    bill: IoBill


@dataclass(frozen=True)
class LSMConfig:
    """Engine tuning knobs (Cassandra 1.0-like defaults, scaled down)."""

    memtable_flush_bytes: int = 8 * 2**20
    bloom_fp_rate: float = 0.01
    group_commit_ops: int = 64
    bloom_enabled: bool = True
    block_size: int = 4096
    min_compaction_threshold: int = 4
    max_compaction_threshold: int = 32
    #: Column count of a complete record; a complete memtable hit (always
    #: the newest version) lets reads skip the on-disk runs entirely.
    expected_fields: int = 5


class LSMEngine:
    """A single node's LSM storage engine."""

    def __init__(self, config: LSMConfig = LSMConfig(), seed: int = 0,
                 name: str = "lsm"):
        self.config = config
        self.name = name
        self._seed = seed
        self._seq = 0
        self.memtable = Memtable(seed=seed)
        self.commit_log = CommitLog(group_commit_ops=config.group_commit_ops)
        self.sstables: list[SSTable] = []
        #: Logical WAL records since the last flush, in append order —
        #: what a crash-recovery replay reconstructs the memtable from.
        self._wal_records: list[tuple[str, object, int]] = []
        #: Per-engine generation counter.  Generations seed the page-cache
        #: block layout, so they must depend only on this engine's own
        #: history — the process-global SSTable counter would make a run's
        #: cache behaviour vary with whatever ran earlier in the process.
        self._generations = 0
        self.compaction = SizeTieredCompaction(
            min_threshold=config.min_compaction_threshold,
            max_threshold=config.max_compaction_threshold,
            bloom_fp_rate=config.bloom_fp_rate,
            generation_source=self._allocate_generation,
        )
        self.flushes = 0
        self.reads = 0
        self.writes = 0
        self.sstables_probed = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _allocate_generation(self) -> int:
        self._generations += 1
        return self._generations

    # -- write path ---------------------------------------------------------

    def put(self, key: str, fields: Mapping[str, str]) -> IoBill:
        """Durably buffer a write; returns the implied disk work."""
        self.writes += 1
        payload = sstable_entry_size(key, fields)
        synced = self.commit_log.append(payload)
        seq = self._next_seq()
        self.memtable.put(key, fields, seq)
        self._wal_records.append((key, dict(fields), seq))
        bill = IoBill(wal_sync_bytes=synced)
        self._maybe_flush(bill)
        return bill

    def delete(self, key: str) -> IoBill:
        """Write a tombstone for ``key``."""
        self.writes += 1
        payload = sstable_entry_size(key, TOMBSTONE)
        synced = self.commit_log.append(payload)
        seq = self._next_seq()
        self.memtable.delete(key, seq)
        self._wal_records.append((key, TOMBSTONE, seq))
        bill = IoBill(wal_sync_bytes=synced)
        self._maybe_flush(bill)
        return bill

    def _maybe_flush(self, bill: IoBill) -> None:
        if self.memtable.size_bytes >= self.config.memtable_flush_bytes:
            bill.flush_write_bytes += self.flush()
            task = self.maybe_compact()
            if task is not None:
                bill.compaction_io_bytes += task.io_bytes

    def flush(self) -> int:
        """Flush the memtable into a new SSTable; returns bytes written."""
        items = self.memtable.sorted_items()
        if not items:
            return 0
        table = SSTable(items, bloom_fp_rate=self.config.bloom_fp_rate,
                        generation=self._allocate_generation())
        self.sstables.append(table)
        self.flushes += 1
        active = self.commit_log.active_segment.index
        self.commit_log.force_sync()
        self.commit_log.mark_clean(active - 1)
        self.memtable = Memtable(seed=self._seed + self.flushes)
        self._wal_records = []
        return table.size_bytes

    def simulate_crash(self) -> int:
        """Crash the node and replay the WAL, as recovery would.

        SSTables are durable; the memtable is rebuilt from the commit
        log's *synced* records.  The unsynced group-commit tail is lost —
        the write-durability window both Cassandra and HBase accept in
        exchange for group commit.  Returns the number of writes lost.
        """
        lost = self.commit_log.pending_ops
        survivors = (self._wal_records[:-lost] if lost
                     else list(self._wal_records))
        self.commit_log.discard_unsynced()
        self.memtable = Memtable(seed=self._seed + self.flushes)
        for key, value, seq in survivors:
            if value is TOMBSTONE:
                self.memtable.delete(key, seq)
            else:
                self.memtable.put(key, value, seq)
        self._wal_records = survivors
        return lost

    def maybe_compact(self) -> Optional[CompactionTask]:
        """Run one round of size-tiered compaction if a bucket is ripe."""
        task = self.compaction.plan(self.sstables)
        if task is None:
            return None
        drop = {id(t) for t in task.inputs}
        self.sstables = [t for t in self.sstables if id(t) not in drop]
        self.sstables.append(task.output)
        return task

    # -- read path ------------------------------------------------------------

    def _block_of(self, table: SSTable, key: str) -> tuple:
        """Block id a key's entry lives in, for the page-cache model.

        The offset proxy must be a *deterministic* hash: built-in
        ``hash()`` on strings is salted per process, which would make
        cache hit patterns — and so every measured number — unrepeatable
        across invocations.
        """
        offset_proxy = zlib.crc32(f"{table.generation}:{key}".encode())
        n_blocks = max(1, table.size_bytes // self.config.block_size)
        return ("sst", self.name, table.generation, offset_proxy % n_blocks)

    def get(self, key: str) -> ReadResult:
        """Point read: memtable first, then every candidate SSTable.

        A complete memtable hit short-circuits (it is by construction the
        newest version); otherwise all bloom-passing runs are consulted and
        folded by sequence number, exactly like Cassandra's read path.
        """
        self.reads += 1
        candidates: list[Versioned] = []
        buffered = self.memtable.get(key)
        if buffered is not None:
            if buffered.value is TOMBSTONE:
                return ReadResult(None, IoBill())
            if len(buffered.value) >= self.config.expected_fields:
                return ReadResult(buffered.value, IoBill())
            candidates.append(buffered)
        blocks: list[tuple] = []
        runs = 0
        for table in reversed(self.sstables):
            if self.config.bloom_enabled:
                if not table.may_contain(key):
                    continue
            else:
                if (table.min_key is None or key < table.min_key
                        or key > table.max_key):
                    continue
            self.sstables_probed += 1
            runs += 1
            blocks.append(self._block_of(table, key))
            versioned = table.get(key)
            if versioned is not None:
                candidates.append(versioned)
        bill = IoBill(runs_touched=runs, blocks=tuple(blocks))
        if not candidates:
            return ReadResult(None, bill)
        resolved = resolve_versions(candidates)
        if resolved.value is TOMBSTONE:
            return ReadResult(None, bill)
        return ReadResult(resolved.value, bill)

    def scan(self, start_key: str, count: int) -> tuple[
            list[tuple[str, Mapping[str, str]]], IoBill]:
        """Range scan merged across the memtable and every SSTable.

        Tombstones consume candidates without yielding rows, so a fixed
        per-source fetch of ``count`` can truncate the scan early and skip
        live keys hiding behind deleted ones.  Like Cassandra's range
        reads, the fetch widens until ``count`` live rows are found or
        every source is exhausted.
        """
        self.reads += 1
        need = count
        while True:
            by_key: dict[str, list[Versioned]] = {}
            sources = 0
            blocks: list[tuple] = []
            # A source that filled its chunk may hold unseen keys beyond
            # its last returned one; the merge can only trust keys up to
            # the smallest such last-key (the frontier).
            frontier: Optional[str] = None
            for table in self.sstables:
                chunk = table.scan(start_key, need)
                if chunk:
                    sources += 1
                    for key, versioned in chunk:
                        blocks.append(self._block_of(table, key))
                        by_key.setdefault(key, []).append(versioned)
                    if len(chunk) == need:
                        last = chunk[-1][0]
                        frontier = (last if frontier is None
                                    else min(frontier, last))
            mem_chunk = list(self.memtable.scan(start_key, need))
            for key, versioned in mem_chunk:
                by_key.setdefault(key, []).append(versioned)
            if len(mem_chunk) == need:
                last = mem_chunk[-1][0]
                frontier = last if frontier is None else min(frontier, last)
            live: list[tuple[str, Mapping[str, str]]] = []
            for key in sorted(by_key):
                if frontier is not None and key > frontier:
                    break
                resolved = resolve_versions(by_key[key])
                if resolved.value is not TOMBSTONE:
                    live.append((key, resolved.value))
                if len(live) == count:
                    break
            if len(live) >= count or frontier is None:
                bill = IoBill(runs_touched=sources, blocks=tuple(blocks))
                return live, bill
            need *= 2

    def iter_blocks(self):
        """All on-disk block ids (cache warm-up after a load phase)."""
        for table in self.sstables:
            for key, __ in table.items():
                yield self._block_of(table, key)

    # -- accounting -----------------------------------------------------------

    @property
    def compaction_backlog(self) -> int:
        """SSTables beyond the size-tiered trigger (0 when none is ripe).

        A metrics probe, not a planner: deliberately does *not* call
        :meth:`maybe_compact`, which would eagerly merge as a side
        effect of observation.
        """
        return max(0,
                   len(self.sstables) - self.compaction.min_threshold + 1)

    @property
    def disk_bytes(self) -> int:
        """Current on-disk footprint: SSTables plus commit-log segments."""
        return (sum(t.size_bytes for t in self.sstables)
                + self.commit_log.total_bytes)

    @property
    def record_count(self) -> int:
        """Live records currently visible to reads."""
        by_key: dict[str, list[Versioned]] = {}
        for table in self.sstables:
            for key, versioned in table.items():
                by_key.setdefault(key, []).append(versioned)
        for key, versioned in self.memtable.sorted_items():
            by_key.setdefault(key, []).append(versioned)
        return sum(
            1 for versions in by_key.values()
            if resolve_versions(versions).value is not TOMBSTONE
        )
