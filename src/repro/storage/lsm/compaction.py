"""Size-tiered compaction.

Cassandra 1.0's default strategy: group SSTables into buckets of similar
size; when a bucket reaches ``min_threshold`` tables, merge them into one.
Newest data wins on key collisions; tombstones drop shadowed entries and
are themselves purged when the merge output is the oldest data for the key
(approximated here by purging tombstones whenever every input run
participates, i.e. a full merge).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.storage.lsm.sstable import (
    SSTable,
    TOMBSTONE,
    Versioned,
    resolve_versions,
)

__all__ = ["CompactionTask", "SizeTieredCompaction", "merge_sstables"]


def merge_sstables(tables: Sequence[SSTable], drop_tombstones: bool,
                   bloom_fp_rate: float = 0.01,
                   generation: int | None = None) -> SSTable:
    """K-way merge of runs; per-entry sequence numbers resolve conflicts."""
    by_key: dict[str, list[Versioned]] = {}
    for table in tables:
        for key, versioned in table.items():
            by_key.setdefault(key, []).append(versioned)
    merged: list[tuple[str, Versioned]] = []
    for key in sorted(by_key):
        resolved = resolve_versions(by_key[key])
        if drop_tombstones and resolved.value is TOMBSTONE:
            continue
        merged.append((key, resolved))
    return SSTable(merged, bloom_fp_rate=bloom_fp_rate,
                   generation=generation)


@dataclass
class CompactionTask:
    """A planned merge: inputs, output, and the IO bill for the simulator."""

    inputs: list[SSTable]
    output: SSTable
    read_bytes: int = 0
    write_bytes: int = 0

    @property
    def io_bytes(self) -> int:
        """Total sequential IO the merge performs."""
        return self.read_bytes + self.write_bytes


@dataclass
class SizeTieredCompaction:
    """Cassandra's SizeTieredCompactionStrategy."""

    min_threshold: int = 4
    max_threshold: int = 32
    bucket_low: float = 0.5
    bucket_high: float = 1.5
    bloom_fp_rate: float = 0.01
    #: Allocator for the merged run's generation id.  The engine passes
    #: its per-engine counter so generations — which seed the block-id
    #: layout of the page-cache model — never depend on how many engines
    #: ran earlier in the process (run-to-run determinism).
    generation_source: Optional[Callable[[], int]] = None
    compactions_run: int = field(default=0, init=False)

    def _buckets(self, tables: Sequence[SSTable]) -> list[list[SSTable]]:
        averages: list[float] = []
        buckets: list[list[SSTable]] = []
        for table in sorted(tables, key=lambda t: t.size_bytes):
            for i, average in enumerate(averages):
                low = average * self.bucket_low
                high = average * self.bucket_high
                tiny = table.size_bytes < 50 and average < 50
                if low <= table.size_bytes <= high or tiny:
                    buckets[i].append(table)
                    averages[i] = (
                        sum(t.size_bytes for t in buckets[i]) / len(buckets[i])
                    )
                    break
            else:
                averages.append(float(table.size_bytes))
                buckets.append([table])
        return buckets

    def plan(self, tables: Sequence[SSTable]) -> CompactionTask | None:
        """Choose the next merge, or ``None`` if no bucket is ripe."""
        candidates = [
            bucket for bucket in self._buckets(tables)
            if len(bucket) >= self.min_threshold
        ]
        if not candidates:
            return None
        # Prefer the bucket with the most (smallest) tables, like Cassandra.
        bucket = max(candidates, key=len)[: self.max_threshold]
        drop_tombstones = len(bucket) == len(tables)
        generation = (self.generation_source()
                      if self.generation_source is not None else None)
        output = merge_sstables(bucket, drop_tombstones, self.bloom_fp_rate,
                                generation=generation)
        self.compactions_run += 1
        return CompactionTask(
            inputs=list(bucket),
            output=output,
            read_bytes=sum(t.size_bytes for t in bucket),
            write_bytes=output.size_bytes,
        )
