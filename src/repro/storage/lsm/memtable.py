"""The LSM memtable: an in-memory sorted buffer of recent writes."""

from __future__ import annotations

from typing import Mapping, Optional

from repro.storage.lsm.sstable import (
    TOMBSTONE,
    Versioned,
    sstable_entry_size,
)
from repro.storage.skiplist import SkipList

__all__ = ["Memtable"]


class Memtable:
    """Skip-list-backed write buffer with byte accounting.

    ``size_bytes`` tracks the *serialised* size of the buffered entries
    (what the flush will write), which is what the engine compares against
    its flush threshold — the same policy Cassandra's
    ``memtable_total_space_in_mb`` implements.

    Every stored value is a :class:`Versioned` stamped by the engine's
    global write sequence, so conflict resolution stays correct across
    flush and compaction boundaries.
    """

    def __init__(self, seed: int = 0):
        self._data = SkipList(seed=seed)
        self.size_bytes = 0
        self.ops = 0

    def __len__(self) -> int:
        return len(self._data)

    def put(self, key: str, fields: Mapping[str, str], seq: int) -> None:
        """Insert or column-wise upsert ``fields`` under ``key``."""
        self.ops += 1
        existing: Optional[Versioned] = self._data.get(key)
        if existing is None or existing.value is TOMBSTONE:
            merged = dict(fields)
        else:
            self.size_bytes -= sstable_entry_size(key, existing.value)
            merged = dict(existing.value)
            merged.update(fields)
        self._data.put(key, Versioned(seq, merged))
        self.size_bytes += sstable_entry_size(key, merged)

    def delete(self, key: str, seq: int) -> None:
        """Record a deletion (tombstone) for ``key``."""
        self.ops += 1
        existing: Optional[Versioned] = self._data.get(key)
        if existing is not None and existing.value is not TOMBSTONE:
            self.size_bytes -= sstable_entry_size(key, existing.value)
        elif existing is None:
            self.size_bytes += sstable_entry_size(key, TOMBSTONE)
        self._data.put(key, Versioned(seq, TOMBSTONE))

    def get(self, key: str) -> Optional[Versioned]:
        """Buffered version for ``key``, or ``None`` if not buffered."""
        return self._data.get(key)

    def scan(self, start_key: str, count: int) -> list[tuple[str, Versioned]]:
        """Up to ``count`` buffered entries with key >= ``start_key``."""
        return self._data.scan(start_key, count)

    def sorted_items(self) -> list[tuple[str, Versioned]]:
        """All buffered entries in key order (flush input)."""
        return list(self._data.items())
