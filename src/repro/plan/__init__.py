"""Simulation-validated capacity planner (``apmbench plan``).

Answers "what cluster serves this load?" in three stages:

1. **Demand** — a :class:`~repro.plan.spec.LoadSpec` turns users into a
   required operation rate via the paper's Section 8 arithmetic
   (:mod:`repro.core.capacity`).
2. **Analytical prune** — :func:`~repro.plan.search.analytical_frontier`
   searches store x hardware x node count with the per-store throughput
   model (:mod:`repro.plan.model`), keeping only the minimal feasible
   node count per (store, hardware) pair.
3. **Simulate the frontier** — :func:`~repro.plan.validate.validate_frontier`
   runs every survivor as a real bounded-load benchmark through the
   orchestrator's content-addressed store, and
   :func:`~repro.plan.report.build_report` recommends the cheapest
   configuration the *simulation* (not the model) confirms, with
   model-vs-simulation deltas on display.

Netflix-style capacity models stop after stage 2; the whole point of
this subsystem is stage 3, because an analytical model is optimistic by
construction and silent about latency percentiles.
"""

from __future__ import annotations

from repro.orchestrator.store import ResultStore
from repro.plan.hardware import (HARDWARE_PROFILES, HardwareProfile,
                                 hardware_profile)
from repro.plan.model import ModeledCapacity, modeled_capacity
from repro.plan.report import PlanReport, build_report
from repro.plan.search import (Candidate, FrontierEntry, FrontierResult,
                               analytical_frontier, exhaustive_pick)
from repro.plan.spec import LoadSpec, SLOTarget, parse_slo
from repro.plan.validate import (SLOCheck, ValidationOutcome,
                                 ValidationSettings,
                                 estimate_validation_cost,
                                 validate_frontier, validation_config)
from repro.stores.registry import STORE_NAMES

__all__ = [
    "Candidate",
    "FrontierEntry",
    "FrontierResult",
    "HARDWARE_PROFILES",
    "HardwareProfile",
    "LoadSpec",
    "ModeledCapacity",
    "PlanReport",
    "SLOCheck",
    "SLOTarget",
    "ValidationOutcome",
    "ValidationSettings",
    "analytical_frontier",
    "build_report",
    "estimate_validation_cost",
    "exhaustive_pick",
    "hardware_profile",
    "modeled_capacity",
    "parse_slo",
    "run_plan",
    "validate_frontier",
    "validation_config",
]


def run_plan(spec: LoadSpec,
             stores: tuple[str, ...] = STORE_NAMES,
             profiles: tuple[HardwareProfile, ...] | None = None,
             settings: ValidationSettings | None = None,
             store: ResultStore | None = None,
             jobs: int = 1,
             max_nodes: int | None = None,
             progress=None) -> PlanReport:
    """The full pipeline: prune analytically, simulate, recommend."""
    if settings is None:
        settings = ValidationSettings()
    frontier = analytical_frontier(
        spec, stores=stores, profiles=profiles,
        records_per_node=settings.records_per_node, max_nodes=max_nodes)
    outcomes = validate_frontier(frontier.entries, spec, settings,
                                 store=store, jobs=jobs, progress=progress)
    return build_report(spec, settings, frontier, outcomes)
