"""Frontier search over store x hardware x node count.

The search enumerates every candidate configuration, prices it, and
prunes with the analytical model:

* candidates whose modeled capacity falls short of the required rate
  are infeasible — the model is optimistic, so this is safe;
* among feasible candidates of one (store, hardware) pair, only the
  **minimal** node count survives: modeled capacity is monotone
  non-decreasing in node count while cost is strictly increasing, so
  every larger cluster of the same hardware meets the same demand at
  strictly higher cost (it is dominated).

What survives — at most one candidate per (store, hardware) pair — is
the *analytical frontier*: the configurations worth spending simulation
time on.  ``exhaustive_pick`` evaluates every candidate without any
pruning; the property suite asserts the frontier always contains the
exhaustive winner, i.e. pruning never discards a configuration the
full search would have picked.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plan.hardware import HARDWARE_PROFILES, HardwareProfile
from repro.plan.model import ModeledCapacity, modeled_capacity
from repro.plan.spec import LoadSpec
from repro.stores.registry import STORE_NAMES, store_class
from repro.ycsb.runner import PAPER_RECORDS_PER_NODE

__all__ = ["Candidate", "FrontierEntry", "FrontierResult",
           "analytical_frontier", "exhaustive_pick"]


@dataclass(frozen=True)
class Candidate:
    """One point of the search space."""

    store: str
    hardware: HardwareProfile
    n_nodes: int

    @property
    def cost(self) -> float:
        """Hourly cost of this configuration (node-cost units)."""
        return self.hardware.cost(self.n_nodes)

    def label(self) -> str:
        return f"{self.store}/{self.hardware.name}/n{self.n_nodes}"


@dataclass(frozen=True)
class FrontierEntry:
    """A surviving candidate plus the model's case for it."""

    candidate: Candidate
    modeled: ModeledCapacity
    #: required rate / modeled capacity (< 1 means analytically feasible).
    utilisation: float

    @property
    def cost(self) -> float:
        return self.candidate.cost


@dataclass
class FrontierResult:
    """Everything the analytical pass concluded."""

    #: Surviving candidates, sorted by (cost, nodes, store, hardware) —
    #: a deterministic cheapest-first validation order.
    entries: list[FrontierEntry]
    #: (store, reason) pairs the search excluded outright.
    skipped: list[tuple[str, str]]
    #: (store, hardware) pairs that cannot meet the demand at any
    #: allowed node count, with the best capacity they reached.
    infeasible: list[tuple[str, str, float]]
    #: Candidate configurations examined (pre-pruning).
    examined: int = 0

    def per_store(self) -> dict[str, list[FrontierEntry]]:
        """Frontier entries grouped by store, preserving cost order."""
        grouped: dict[str, list[FrontierEntry]] = {}
        for entry in self.entries:
            grouped.setdefault(entry.candidate.store, []).append(entry)
        return grouped


def _entry_sort_key(entry: FrontierEntry):
    candidate = entry.candidate
    return (candidate.cost, candidate.n_nodes, candidate.store,
            candidate.hardware.name)


def analytical_frontier(spec: LoadSpec,
                        stores: tuple[str, ...] = STORE_NAMES,
                        profiles: tuple[HardwareProfile, ...] | None = None,
                        records_per_node: int = 20_000,
                        paper_records_per_node: int = PAPER_RECORDS_PER_NODE,
                        max_nodes: int | None = None,
                        ) -> FrontierResult:
    """Prune the search space down to the simulation-worthy frontier.

    ``records_per_node`` must match what the validation runs will load:
    the model's cache-miss arithmetic mirrors the runner's RAM scaling,
    and the two sides have to see the same memory regime.
    """
    if profiles is None:
        profiles = tuple(HARDWARE_PROFILES.values())
    required = spec.required_ops_per_s
    entries: list[FrontierEntry] = []
    skipped: list[tuple[str, str]] = []
    infeasible: list[tuple[str, str, float]] = []
    examined = 0
    for store_name in stores:
        cls = store_class(store_name)  # raises on unknown store
        if spec.workload.has_scans and not cls.supports_scans:
            skipped.append(
                (store_name,
                 f"does not support scans (workload {spec.workload.name})"))
            continue
        for hardware in profiles:
            ceiling = hardware.max_nodes
            if max_nodes is not None:
                ceiling = min(ceiling, max_nodes)
            best: FrontierEntry | None = None
            peak = 0.0
            for n_nodes in range(1, ceiling + 1):
                examined += 1
                modeled = modeled_capacity(
                    store_name, hardware, n_nodes, spec.workload,
                    records_per_node, paper_records_per_node)
                peak = max(peak, modeled.ops_per_s)
                if modeled.ops_per_s >= required:
                    # Monotonicity: the first feasible node count is the
                    # cheapest of this (store, hardware) pair; larger
                    # clusters are dominated.
                    best = FrontierEntry(
                        candidate=Candidate(store_name, hardware, n_nodes),
                        modeled=modeled,
                        utilisation=required / modeled.ops_per_s,
                    )
                    break
            if best is None:
                infeasible.append((store_name, hardware.name, peak))
            else:
                entries.append(best)
    entries.sort(key=_entry_sort_key)
    return FrontierResult(entries=entries, skipped=skipped,
                          infeasible=infeasible, examined=examined)


def exhaustive_pick(spec: LoadSpec,
                    stores: tuple[str, ...] = STORE_NAMES,
                    profiles: tuple[HardwareProfile, ...] | None = None,
                    records_per_node: int = 20_000,
                    paper_records_per_node: int = PAPER_RECORDS_PER_NODE,
                    max_nodes: int | None = None,
                    ) -> Candidate | None:
    """The cheapest analytically feasible candidate, found the slow way.

    Evaluates *every* (store, hardware, node count) point with no
    pruning — the oracle the property tests hold ``analytical_frontier``
    against.  Ties break exactly like the frontier ordering.
    """
    if profiles is None:
        profiles = tuple(HARDWARE_PROFILES.values())
    required = spec.required_ops_per_s
    best: Candidate | None = None

    def better(a: Candidate, b: Candidate | None) -> bool:
        if b is None:
            return True
        return ((a.cost, a.n_nodes, a.store, a.hardware.name)
                < (b.cost, b.n_nodes, b.store, b.hardware.name))

    for store_name in stores:
        cls = store_class(store_name)
        if spec.workload.has_scans and not cls.supports_scans:
            continue
        for hardware in profiles:
            ceiling = hardware.max_nodes
            if max_nodes is not None:
                ceiling = min(ceiling, max_nodes)
            for n_nodes in range(1, ceiling + 1):
                modeled = modeled_capacity(
                    store_name, hardware, n_nodes, spec.workload,
                    records_per_node, paper_records_per_node)
                if modeled.ops_per_s < required:
                    continue
                candidate = Candidate(store_name, hardware, n_nodes)
                if better(candidate, best):
                    best = candidate
    return best
