"""Load specifications: what the cluster must serve.

A :class:`LoadSpec` is the demand side of the planner: a monitored
estate (users -> agents -> metrics flushed every interval, the paper's
Section 8 arithmetic via :func:`repro.core.capacity.required_inserts_per_s`),
an operation mix, and the SLO percentile targets a recommendation must
meet.  The supply side — what a given store on given hardware can do —
lives in :mod:`repro.plan.model` (analytically) and
:mod:`repro.plan.validate` (by simulation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.capacity import required_inserts_per_s
from repro.ycsb.workload import WORKLOAD_W, Workload

__all__ = ["SLOTarget", "LoadSpec", "parse_slo"]

#: Histograms a target may constrain, by result attribute.
_SLO_OPS = ("read", "write", "scan")


@dataclass(frozen=True)
class SLOTarget:
    """One latency objective: ``op`` percentile must not exceed a bound."""

    op: str
    percentile: float
    max_latency_s: float

    def __post_init__(self):
        if self.op not in _SLO_OPS:
            raise ValueError(
                f"unknown SLO op {self.op!r}; one of {', '.join(_SLO_OPS)}")
        if not 0 < self.percentile < 100:
            raise ValueError(
                f"percentile must be in (0, 100), got {self.percentile}")
        if self.max_latency_s <= 0:
            raise ValueError("max_latency_s must be positive")

    def describe(self) -> str:
        return (f"{self.op} p{self.percentile:g} "
                f"<= {self.max_latency_s * 1000:g} ms")


def parse_slo(text: str) -> SLOTarget:
    """Parse ``"read:p99:0.05"`` / ``"write:p95:0.02"`` into a target."""
    parts = text.split(":")
    if len(parts) != 3:
        raise ValueError(
            f"SLO {text!r} must look like 'read:p99:0.05' "
            "(op:percentile:max-seconds)")
    op, pct, bound = parts
    if not pct.lower().startswith("p"):
        raise ValueError(f"SLO percentile {pct!r} must start with 'p'")
    return SLOTarget(op=op.strip().lower(),
                     percentile=float(pct[1:]),
                     max_latency_s=float(bound))


@dataclass(frozen=True)
class LoadSpec:
    """The demand a recommended cluster must satisfy.

    The agent arithmetic follows the paper: every ``users_per_agent``
    users are served by one monitored application node whose agent
    flushes ``metrics_per_agent`` measurements each ``flush_interval_s``
    (Section 8: 240 agents x 10 K metrics / 10 s = 240 K inserts/s).
    """

    users: int
    users_per_agent: int = 10_000
    metrics_per_agent: int = 10_000
    flush_interval_s: float = 10.0
    workload: Workload = field(default_factory=lambda: WORKLOAD_W)
    slos: tuple[SLOTarget, ...] = ()
    seed: int = 42

    def __post_init__(self):
        if self.users < 1:
            raise ValueError("users must be >= 1")
        if self.users_per_agent < 1:
            raise ValueError("users_per_agent must be >= 1")
        if self.metrics_per_agent < 1:
            raise ValueError("metrics_per_agent must be >= 1")
        if self.flush_interval_s <= 0:
            raise ValueError("flush_interval_s must be positive")
        if self.workload.write_fraction <= 0:
            raise ValueError(
                f"workload {self.workload.name} has no writes; an APM "
                "ingest tier cannot be sized for a load that inserts "
                "nothing")

    @property
    def agents(self) -> int:
        """Monitored application nodes (one agent each)."""
        return math.ceil(self.users / self.users_per_agent)

    @property
    def insert_rate(self) -> float:
        """Inserts/s the agent fleet generates (Section 8 arithmetic)."""
        return required_inserts_per_s(self.agents, self.metrics_per_agent,
                                      self.flush_interval_s)

    @property
    def required_ops_per_s(self) -> float:
        """Total operation rate once reads/scans ride along the mix.

        The insert rate is fixed by the estate; the workload mix says
        how many reads and scans accompany each insert, so the total
        rate the tier must sustain is ``inserts / write_fraction``.
        """
        return self.insert_rate / self.workload.write_fraction

    def describe(self) -> str:
        slos = ", ".join(t.describe() for t in self.slos) or "none"
        return (f"{self.users:,} users -> {self.agents} agents x "
                f"{self.metrics_per_agent:,} metrics / "
                f"{self.flush_interval_s:g} s = "
                f"{self.insert_rate:,.0f} inserts/s "
                f"({self.required_ops_per_s:,.0f} ops/s total on workload "
                f"{self.workload.name}; SLOs: {slos})")
