"""Per-store analytical throughput model (the planner's pruning sieve).

For every (store, hardware profile, node count) the model estimates the
sustainable operation rate as the tightest of three per-node bounds —
CPU, disk, network — scaled to the cluster:

* **CPU**: the mix-weighted per-operation server CPU from the store's
  own :meth:`~repro.stores.base.Store.default_profile` (the constants
  the simulation charges), inflated by the per-connection overhead the
  same way :meth:`~repro.stores.base.Store.server_cost` inflates it, on
  ``cores x core_speed`` reference-cores per node.
* **Disk**: expected disk-seconds per operation from the store's write
  architecture (LSM append, B-tree read-modify-write, log-structured
  leaf faulting, or purely in-memory) and the cache-miss ratio, served
  at the disk's queue depth.  The cache size mirrors
  :func:`repro.ycsb.runner.scaled_spec` *exactly* — the model and the
  validating simulation must agree on whether a configuration is
  memory- or disk-bound, or the pruning step would discard candidates
  for the wrong reason.
* **Network**: mix-weighted wire bytes per operation against the node's
  NIC.

The model is deliberately **optimistic**: it prices no client-machine
CPU, no driver connection management, no coordinator double-charging
and no queueing latency.  Candidates it declares infeasible truly are
(they fail an even rosier world); candidates it declares feasible are
*promises to be checked*, which is why the planner simulates the
surviving frontier instead of trusting the arithmetic
(:mod:`repro.plan.validate`).  Latency SLOs are not modeled at all —
percentiles come only from simulation.

Capacity is monotone non-decreasing in the node count (property-tested
in ``tests/plan/test_model_properties.py``); the frontier search leans
on that to prune every node count above the minimal feasible one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plan.hardware import HardwareProfile
from repro.storage.record import APM_SCHEMA
from repro.stores.registry import store_class
from repro.ycsb.runner import PAPER_RECORDS_PER_NODE
from repro.ycsb.workload import Workload

__all__ = ["ModeledCapacity", "modeled_capacity", "write_architecture"]

#: Disk block a random point access touches (one cache/SSTable block).
BLOCK_BYTES = 4096

#: How each store's write path uses the disk.  In-memory stores are
#: detected from the store class itself (``rebalance_uses_disk`` is
#: False exactly for the stores whose working set lives in RAM).
_WRITE_ARCHITECTURE = {
    "cassandra": "lsm",       # memtable + sequential commit log
    "hbase": "lsm",           # memstore + WAL append
    "voldemort": "btree-log", # BDB JE: lazy leaf faulting + log append
    "mysql": "btree",         # InnoDB read-modify-write + redo append
}


def write_architecture(store_name: str) -> str:
    """The disk behaviour class of ``store_name``'s write path."""
    cls = store_class(store_name)
    if not cls.rebalance_uses_disk:
        return "memory"
    return _WRITE_ARCHITECTURE.get(store_name, "lsm")


@dataclass(frozen=True)
class ModeledCapacity:
    """Analytical throughput estimate for one candidate configuration."""

    store: str
    hardware: str
    n_nodes: int
    #: Per-node bounds, ops/s (``inf`` where the resource is not used).
    cpu_ops_per_node: float
    disk_ops_per_node: float
    network_ops_per_node: float
    #: Whole-cluster sustainable rate: ``n x min(bounds)``.
    ops_per_s: float
    #: Which bound is tightest ("cpu" | "disk" | "network" | "memory").
    binding: str
    #: Fraction of one node's data set that misses the cache.
    miss_ratio: float

    def row(self) -> dict:
        return {
            "store": self.store,
            "hardware": self.hardware,
            "n_nodes": self.n_nodes,
            "modeled_ops_per_s": round(self.ops_per_s, 1),
            "binding": self.binding,
            "miss_ratio": round(self.miss_ratio, 4),
        }


def _scaled_cache_bytes(hardware: HardwareProfile, records_per_node: int,
                        paper_records_per_node: int) -> int:
    """Cache bytes after the runner's RAM scaling (see ``scaled_spec``)."""
    scale = records_per_node / paper_records_per_node
    ram = hardware.ram_bytes
    if scale < 1.0:
        ram = max(1 << 20, int(ram * scale))
    return int(ram * hardware.cache_fraction)


def _mix_cpu_seconds(store_name: str, workload: Workload) -> float:
    """Mix-weighted server CPU per operation on a reference core."""
    cls = store_class(store_name)
    profile = cls.default_profile()
    scan_cpu = (profile.scan_base_cpu
                + workload.scan_length * profile.scan_per_record_cpu)
    write_prop = (workload.insert_proportion + workload.update_proportion
                  + workload.delete_proportion)
    # Off-commit-path background work (e.g. BDB JE's log cleaner) still
    # consumes the node's cores, so it caps throughput.
    background = getattr(cls, "BACKGROUND_WRITE_CPU", 0.0)
    return (workload.read_proportion * profile.read_cpu
            + write_prop * (profile.write_cpu + background)
            + workload.scan_proportion * scan_cpu)


def _disk_seconds_per_op(store_name: str, workload: Workload,
                         miss_ratio: float, disk) -> float:
    """Expected disk busy-seconds one operation induces."""
    schema = APM_SCHEMA
    arch = write_architecture(store_name)
    if arch == "memory":
        return 0.0
    random_block = disk.access_time(BLOCK_BYTES, sequential=False)
    seconds = 0.0
    # Point reads fault one block when the cache misses.
    seconds += workload.read_proportion * miss_ratio * random_block
    # A scan seeks once, then streams its rows.
    if workload.scan_proportion > 0:
        scan_bytes = workload.scan_length * schema.raw_record_bytes
        seconds += (workload.scan_proportion * miss_ratio
                    * disk.access_time(scan_bytes, sequential=False))
    write_prop = (workload.insert_proportion + workload.update_proportion
                  + workload.delete_proportion)
    if write_prop > 0:
        append = disk.access_time(schema.raw_record_bytes, sequential=True)
        if arch == "lsm":
            # Pure sequential append (commit log / WAL).
            seconds += write_prop * append
        elif arch == "btree-log":
            # Log-structured writes, but a fraction of them fault the
            # target leaf in from disk first (BDB JE's lazy leaves).
            cls = store_class(store_name)
            fault = getattr(cls, "WRITE_LEAF_FAULT_PERCENT", 0) / 100.0
            seconds += write_prop * (
                append + fault * miss_ratio * random_block)
        else:  # btree: read-modify-write plus the redo append
            seconds += write_prop * (
                miss_ratio * random_block + append)
    return seconds


def _wire_bytes_per_op(store_name: str, workload: Workload) -> float:
    """Mix-weighted bytes one operation moves through a server NIC."""
    schema = APM_SCHEMA
    profile = store_class(store_name).default_profile()
    framing = (profile.request_overhead_bytes
               + profile.response_overhead_bytes)
    read_bytes = schema.key_length + schema.raw_value_bytes
    write_bytes = schema.key_length + schema.raw_value_bytes
    scan_bytes = (schema.key_length
                  + workload.scan_length * schema.raw_value_bytes)
    write_prop = (workload.insert_proportion + workload.update_proportion
                  + workload.delete_proportion)
    return framing + (workload.read_proportion * read_bytes
                      + write_prop * write_bytes
                      + workload.scan_proportion * scan_bytes)


def modeled_capacity(store_name: str, hardware: HardwareProfile,
                     n_nodes: int, workload: Workload,
                     records_per_node: int,
                     paper_records_per_node: int = PAPER_RECORDS_PER_NODE,
                     ) -> ModeledCapacity:
    """Analytical sustainable ops/s of ``n_nodes`` x ``hardware``.

    ``records_per_node`` is the per-node data set the benchmark loads
    (the paper loads 10 M/node; validation runs scale this down), which
    together with the profile's scaled RAM fixes the cache-miss ratio.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    schema = APM_SCHEMA
    data_bytes = records_per_node * schema.raw_record_bytes
    cache_bytes = _scaled_cache_bytes(hardware, records_per_node,
                                      paper_records_per_node)
    miss_ratio = max(0.0, 1.0 - cache_bytes / data_bytes)

    arch = write_architecture(store_name)
    if arch == "memory" and data_bytes > hardware.ram_bytes:
        # An in-memory store cannot hold more data than RAM (the paper's
        # Redis runs died of exactly this); no node count fixes a
        # per-node overcommit.
        return ModeledCapacity(
            store=store_name, hardware=hardware.name, n_nodes=n_nodes,
            cpu_ops_per_node=0.0, disk_ops_per_node=0.0,
            network_ops_per_node=0.0, ops_per_s=0.0, binding="memory",
            miss_ratio=miss_ratio)

    profile = store_class(store_name).default_profile()
    # The same inflation server_cost() applies: every open connection
    # adds a fraction of the base cost, and connections scale with the
    # fleet — this is what saturates Cassandra's speed-up (Section 8).
    sessions = hardware.connections_per_node * n_nodes
    cpu_per_op = (_mix_cpu_seconds(store_name, workload)
                  * (1.0 + profile.per_connection_overhead * sessions))
    cpu_bound = hardware.cores * hardware.core_speed / cpu_per_op

    disk_seconds = _disk_seconds_per_op(store_name, workload, miss_ratio,
                                        hardware.disk)
    disk_bound = (float("inf") if disk_seconds <= 0
                  else hardware.disk.queue_depth / disk_seconds)

    wire = _wire_bytes_per_op(store_name, workload)
    network_bound = hardware.network.bandwidth_bytes_per_s / wire

    per_node = min(cpu_bound, disk_bound, network_bound)
    binding = ("cpu" if per_node == cpu_bound
               else "disk" if per_node == disk_bound
               else "network")
    return ModeledCapacity(
        store=store_name,
        hardware=hardware.name,
        n_nodes=n_nodes,
        cpu_ops_per_node=cpu_bound,
        disk_ops_per_node=disk_bound,
        network_ops_per_node=network_bound,
        ops_per_s=n_nodes * per_node,
        binding=binding,
        miss_ratio=miss_ratio,
    )
