"""Validated hardware-profile registry for the capacity planner.

A :class:`HardwareProfile` is a priced, self-consistent node type the
planner may provision: the paper's two test beds (Cluster M and
Cluster D node types, Section 3) plus modern SSD/NVMe shapes, so the
planner can answer both "what would the paper's hardware need?" and
"what does this cost on current machines?".

Profiles validate themselves at construction — a zero-throughput disk
with nonzero capacity, a cache fraction outside ``(0, 1]``, a free node
— because a planner search quietly exploring an inconsistent profile
would recommend hardware that cannot exist.  Costs are expressed in
node-cost units per hour relative to a paper Cluster M node (1.0), so
recommendations rank configurations without pretending to know cloud
list prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.cluster import CLUSTER_D, CLUSTER_M, ClusterSpec, NodeSpec
from repro.sim.disk import DiskSpec
from repro.sim.network import GIGABIT, NetworkSpec

__all__ = ["HardwareProfile", "HARDWARE_PROFILES", "hardware_profile"]


@dataclass(frozen=True)
class HardwareProfile:
    """One provisionable node type, priced and validated."""

    name: str
    description: str
    cores: int
    core_speed: float
    ram_bytes: int
    disk: DiskSpec
    #: Fraction of RAM available to page/store caches (JVM heaps and the
    #: OS crowd out the rest — 0.25 on the paper's 4 GB Cluster D nodes).
    cache_fraction: float
    #: Relative rental cost per node-hour (paper Cluster M node = 1.0).
    hourly_cost: float
    connections_per_node: int = 128
    max_nodes: int = 64
    network: NetworkSpec = field(default_factory=lambda: GIGABIT)

    def __post_init__(self):
        if not self.name:
            raise ValueError("profile needs a name")
        if self.cores < 1:
            raise ValueError(f"{self.name}: cores must be >= 1")
        if self.core_speed <= 0:
            raise ValueError(f"{self.name}: core_speed must be positive")
        if self.ram_bytes < 1 << 20:
            raise ValueError(f"{self.name}: ram_bytes must be >= 1 MiB")
        if not 0 < self.cache_fraction <= 1:
            raise ValueError(
                f"{self.name}: cache_fraction must be in (0, 1], got "
                f"{self.cache_fraction}")
        if self.hourly_cost <= 0:
            raise ValueError(f"{self.name}: hourly_cost must be positive")
        if self.connections_per_node < 1:
            raise ValueError(
                f"{self.name}: connections_per_node must be >= 1")
        if self.max_nodes < 1:
            raise ValueError(f"{self.name}: max_nodes must be >= 1")
        disk = self.disk
        if disk.capacity_bytes > 0 and disk.seq_bandwidth_bytes_per_s <= 0:
            raise ValueError(
                f"{self.name}: disk has {disk.capacity_bytes} bytes of "
                "capacity but zero throughput — data written to it could "
                "never be read back")
        if disk.seq_bandwidth_bytes_per_s < 0:
            raise ValueError(f"{self.name}: disk bandwidth cannot be "
                             "negative")
        if disk.seek_time_s < 0 or disk.rotational_latency_s < 0:
            raise ValueError(f"{self.name}: disk latencies cannot be "
                             "negative")
        if disk.capacity_bytes < 0:
            raise ValueError(f"{self.name}: disk capacity cannot be "
                             "negative")
        if disk.queue_depth < 1:
            raise ValueError(f"{self.name}: disk queue_depth must be >= 1")

    @property
    def cache_bytes(self) -> int:
        """RAM available to caches on one node of this profile."""
        return int(self.ram_bytes * self.cache_fraction)

    def node_spec(self) -> NodeSpec:
        """The simulator's node description for this profile."""
        return NodeSpec(
            cores=self.cores,
            core_speed=self.core_speed,
            ram_bytes=self.ram_bytes,
            disk=self.disk,
            cache_fraction=self.cache_fraction,
        )

    def cluster_spec(self) -> ClusterSpec:
        """A :class:`ClusterSpec` the benchmark runner can provision.

        The name embeds the profile so the resulting
        :class:`~repro.ycsb.runner.BenchmarkConfig` content hashes of two
        different profiles can never collide.
        """
        return ClusterSpec(
            name=f"plan:{self.name}",
            node=self.node_spec(),
            max_nodes=self.max_nodes,
            network=self.network,
            connections_per_node=self.connections_per_node,
        )

    def cost(self, n_nodes: int) -> float:
        """Hourly cost of ``n_nodes`` nodes of this profile."""
        return n_nodes * self.hourly_cost


def _paper_profile(name: str, description: str, spec, hourly_cost: float,
                   ) -> HardwareProfile:
    """Lift one of the paper's ClusterSpecs into a priced profile."""
    node = spec.node
    return HardwareProfile(
        name=name,
        description=description,
        cores=node.cores,
        core_speed=node.core_speed,
        ram_bytes=node.ram_bytes,
        disk=node.disk,
        cache_fraction=node.cache_fraction,
        hourly_cost=hourly_cost,
        connections_per_node=spec.connections_per_node,
        max_nodes=spec.max_nodes,
        network=spec.network,
    )


#: Cluster M node (Section 3): 2x quad-core Xeon, 16 GB RAM, RAID-0
#: spinning disks.  The cost anchor: 1.0 units/node-hour.
PAPER_M = _paper_profile(
    "paper-m",
    "paper Cluster M node: 8 Xeon cores, 16 GiB RAM, RAID-0 HDD",
    CLUSTER_M, hourly_cost=1.0)

#: Cluster D node: 2x dual-core Xeon, 4 GB RAM, one disk.  Older and
#: cheaper but disk-bound once the data outgrows its small cache.
PAPER_D = _paper_profile(
    "paper-d",
    "paper Cluster D node: 4 slower Xeon cores, 4 GiB RAM, single HDD",
    CLUSTER_D, hourly_cost=0.55)

#: A current general-purpose cloud node: many fast cores, SATA SSD.
MODERN_SSD = HardwareProfile(
    name="modern-ssd",
    description="modern node: 16 fast cores, 64 GiB RAM, SATA SSD",
    cores=16,
    core_speed=2.0,
    ram_bytes=64 * 2**30,
    disk=DiskSpec(
        seq_bandwidth_bytes_per_s=500_000_000.0,
        seek_time_s=0.0001,
        rotational_latency_s=0.0,
        capacity_bytes=1_000 * 10**9,
        queue_depth=32,
    ),
    cache_fraction=0.7,
    hourly_cost=2.6,
    connections_per_node=128,
    max_nodes=64,
)

#: A storage-optimised node: twice the cores, NVMe flash.
MODERN_NVME = HardwareProfile(
    name="modern-nvme",
    description="storage-optimised node: 32 fast cores, 256 GiB RAM, NVMe",
    cores=32,
    core_speed=2.2,
    ram_bytes=256 * 2**30,
    disk=DiskSpec(
        seq_bandwidth_bytes_per_s=3_000_000_000.0,
        seek_time_s=0.00002,
        rotational_latency_s=0.0,
        capacity_bytes=2_000 * 10**9,
        queue_depth=64,
    ),
    cache_fraction=0.7,
    hourly_cost=5.5,
    connections_per_node=128,
    max_nodes=64,
)

#: Profiles the planner searches by default, in presentation order.
HARDWARE_PROFILES: dict[str, HardwareProfile] = {
    profile.name: profile
    for profile in (PAPER_M, PAPER_D, MODERN_SSD, MODERN_NVME)
}


def hardware_profile(name: str) -> HardwareProfile:
    """The registered profile called ``name``."""
    try:
        return HARDWARE_PROFILES[name]
    except KeyError:
        known = ", ".join(HARDWARE_PROFILES)
        raise ValueError(f"unknown hardware profile {name!r}; "
                         f"known profiles: {known}")
