"""Recommendation assembly: analytical claims vs simulated verdicts.

The report is the planner's product: per store, which configuration the
*model* would pick, which one the *simulation* confirms, their deltas
(so the model's error stays visible instead of silently shaping
recommendations), and the overall cheapest validated configuration.
``to_payload`` is the byte-deterministic export — provenance-stamped,
sorted keys, no wall clock — and ``render`` the human table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.provenance import stamp
from repro.plan.search import FrontierEntry, FrontierResult
from repro.plan.spec import LoadSpec
from repro.plan.validate import ValidationOutcome, ValidationSettings

__all__ = ["PlanReport", "build_report"]


@dataclass
class PlanReport:
    """Everything ``apmbench plan`` concluded, ready to export."""

    spec: LoadSpec
    settings: ValidationSettings
    frontier: FrontierResult
    outcomes: list[ValidationOutcome]
    #: Cheapest *validated* candidate per store (None: all rejected).
    recommended_per_store: dict[str, ValidationOutcome | None] = field(
        default_factory=dict)
    #: Cheapest validated candidate overall.
    recommended: ValidationOutcome | None = None
    #: Stores where the analytical pick and the validated pick differ —
    #: the model alone would have recommended a config the simulation
    #: rejected.
    disagreements: list[dict] = field(default_factory=list)

    def to_payload(self) -> dict:
        """The provenance-stamped, deterministic JSON projection."""
        payload = {
            "spec": {
                "users": self.spec.users,
                "users_per_agent": self.spec.users_per_agent,
                "metrics_per_agent": self.spec.metrics_per_agent,
                "flush_interval_s": self.spec.flush_interval_s,
                "workload": self.spec.workload.name,
                "agents": self.spec.agents,
                "insert_rate": self.spec.insert_rate,
                "required_ops_per_s": self.spec.required_ops_per_s,
                "slos": [t.describe() for t in self.spec.slos],
                "seed": self.spec.seed,
            },
            "validation": {
                "records_per_node": self.settings.records_per_node,
                "measured_ops": self.settings.measured_ops,
                "warmup_ops": self.settings.warmup_ops,
                "throughput_tolerance": self.settings.throughput_tolerance,
            },
            "frontier": {
                "examined": self.frontier.examined,
                "entries": [self._entry_row(e) for e in
                            self.frontier.entries],
                "skipped": [{"store": s, "reason": r}
                            for s, r in self.frontier.skipped],
                "infeasible": [
                    {"store": s, "hardware": h,
                     "peak_modeled_ops_per_s": round(peak, 1)}
                    for s, h, peak in self.frontier.infeasible],
            },
            "outcomes": [o.row() for o in self.outcomes],
            "recommended_per_store": {
                store: (None if outcome is None else outcome.row())
                for store, outcome in
                sorted(self.recommended_per_store.items())
            },
            "recommended": (None if self.recommended is None
                            else self.recommended.row()),
            "disagreements": self.disagreements,
        }
        return stamp(payload, self.spec)

    @staticmethod
    def _entry_row(entry: FrontierEntry) -> dict:
        row = entry.modeled.row()
        row["cost"] = round(entry.candidate.cost, 3)
        row["utilisation"] = round(entry.utilisation, 4)
        return row

    def render(self) -> str:
        """The human-readable recommendation table."""
        lines = [self.spec.describe(), ""]
        header = (f"{'store':<10} {'hardware':<12} {'nodes':>5} "
                  f"{'cost':>7} {'modeled':>10} {'simulated':>10} "
                  f"{'delta':>7} {'verdict':<8}")
        lines.append(header)
        lines.append("-" * len(header))
        for outcome in self.outcomes:
            candidate = outcome.entry.candidate
            modeled = outcome.entry.modeled.ops_per_s
            achievable = min(modeled, outcome.required_ops_per_s)
            if outcome.simulated_ops_per_s > 0:
                delta = (f"{(achievable - outcome.simulated_ops_per_s) / achievable:+.0%}")
            else:
                delta = "n/a"
            verdict = "PASS" if outcome.passed else "FAIL"
            if not outcome.throughput_ok:
                verdict += " tput"
            elif not outcome.passed:
                verdict += " slo"
            lines.append(
                f"{candidate.store:<10} {candidate.hardware.name:<12} "
                f"{candidate.n_nodes:>5} {candidate.cost:>7.2f} "
                f"{modeled:>10,.0f} {outcome.simulated_ops_per_s:>10,.0f} "
                f"{delta:>7} {verdict:<8}")
        for store, __, peak in self.frontier.infeasible:
            lines.append(f"{store:<10} (no feasible config; best modeled "
                         f"{peak:,.0f} ops/s)")
        for store, reason in self.frontier.skipped:
            lines.append(f"{store:<10} (skipped: {reason})")
        lines.append("")
        for store, outcome in sorted(self.recommended_per_store.items()):
            if outcome is None:
                lines.append(f"{store}: no validated configuration")
            else:
                candidate = outcome.entry.candidate
                lines.append(
                    f"{store}: {candidate.n_nodes} x "
                    f"{candidate.hardware.name} "
                    f"(cost {candidate.cost:.2f}/h, simulated "
                    f"{outcome.simulated_ops_per_s:,.0f} ops/s)")
        lines.append("")
        if self.recommended is None:
            lines.append("RECOMMENDATION: no configuration met the "
                         "requirement — raise the node ceiling or relax "
                         "the SLOs")
        else:
            candidate = self.recommended.entry.candidate
            lines.append(
                f"RECOMMENDATION: {candidate.n_nodes} x "
                f"{candidate.hardware.name} running {candidate.store} "
                f"(cost {candidate.cost:.2f}/h)")
        for disagreement in self.disagreements:
            lines.append(
                f"note: for {disagreement['store']} the analytical model "
                f"alone would pick {disagreement['analytical']} — "
                f"{disagreement['reason']}")
        return "\n".join(lines)


def build_report(spec: LoadSpec, settings: ValidationSettings,
                 frontier: FrontierResult,
                 outcomes: list[ValidationOutcome]) -> PlanReport:
    """Turn frontier + validation verdicts into recommendations.

    ``outcomes`` must be in frontier (cheapest-first) order; the
    recommendation per store is then simply the first passing outcome.
    """
    report = PlanReport(spec=spec, settings=settings, frontier=frontier,
                        outcomes=outcomes)
    by_store: dict[str, list[ValidationOutcome]] = {}
    for outcome in outcomes:
        by_store.setdefault(outcome.entry.candidate.store,
                            []).append(outcome)
    for store, store_outcomes in by_store.items():
        analytical = store_outcomes[0]  # cheapest by model
        validated = next((o for o in store_outcomes if o.passed), None)
        report.recommended_per_store[store] = validated
        if validated is not analytical:
            reasons = []
            if not analytical.throughput_ok:
                reasons.append(
                    f"simulated {analytical.simulated_ops_per_s:,.0f} "
                    f"ops/s < required "
                    f"{analytical.required_ops_per_s:,.0f}")
            failed = [c for c in analytical.slo_checks if not c.passed]
            for check in failed:
                observed = (f"{check.observed_s * 1000:.1f} ms"
                            if check.observed_s is not None else "n/a")
                reasons.append(
                    f"{check.target.describe()} breached ({observed})")
            report.disagreements.append({
                "store": store,
                "analytical": analytical.entry.candidate.label(),
                "validated": (None if validated is None
                              else validated.entry.candidate.label()),
                "reason": "; ".join(reasons) or "rejected by simulation",
            })
    passing = [o for o in outcomes if o.passed]
    if passing:
        report.recommended = min(
            passing, key=lambda o: (o.entry.candidate.cost,
                                    o.entry.candidate.n_nodes,
                                    o.entry.candidate.store,
                                    o.entry.candidate.hardware.name))
    return report
