"""Simulation validation of the analytical frontier.

Each surviving candidate becomes a real :class:`BenchmarkConfig` — the
candidate's hardware profile as the cluster spec, the load spec's
workload, and the required rate as a bounded-load target — and runs
through the PR-4 orchestrator: the content-addressed
:class:`~repro.orchestrator.store.ResultStore` makes re-planning free
(cache hits), and :func:`~repro.orchestrator.pool.execute_grid` gives
parallel byte-identical execution.  The configs carry **no** opaque
values (no custom store kwargs, schedules or policies), so they stay
portable across process boundaries and content-addressable on disk.

A candidate passes when the simulated run (a) sustains the required
rate within tolerance and (b) meets every latency SLO percentile.  The
analytical model claims neither — it is optimistic on throughput and
silent on latency — which is exactly why candidates the model likes can
die here, and why the recommendation is made *after* this step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.orchestrator.plan import derive_seed, estimate_cost_units
from repro.orchestrator.pool import PointOutcome, execute_grid
from repro.orchestrator.store import ResultStore
from repro.plan.search import FrontierEntry
from repro.plan.spec import LoadSpec, SLOTarget
from repro.ycsb.runner import BenchmarkConfig

__all__ = ["ValidationSettings", "SLOCheck", "ValidationOutcome",
           "estimate_validation_cost", "validation_config",
           "validate_frontier"]


@dataclass(frozen=True)
class ValidationSettings:
    """Scale knobs of the validation simulations.

    Small enough to finish in seconds per candidate, large enough that
    the cache regime and steady-state throughput are representative
    (the runner still enforces each store's minimum measurement
    window).
    """

    records_per_node: int = 20_000
    measured_ops: int = 4_000
    warmup_ops: int = 500
    #: Achieved throughput may fall this fraction short of the target
    #: before the candidate fails (closed-loop ramp effects).
    throughput_tolerance: float = 0.05

    def __post_init__(self):
        if self.records_per_node < 1:
            raise ValueError("records_per_node must be >= 1")
        if self.measured_ops < 1:
            raise ValueError("measured_ops must be >= 1")
        if self.warmup_ops < 0:
            raise ValueError("warmup_ops must be >= 0")
        if not 0 <= self.throughput_tolerance < 1:
            raise ValueError("throughput_tolerance must be in [0, 1)")


@dataclass(frozen=True)
class SLOCheck:
    """One latency target evaluated against a simulated histogram."""

    target: SLOTarget
    observed_s: float | None  # None: no operations of this type ran
    passed: bool
    note: str = ""

    def row(self) -> dict:
        return {
            "op": self.target.op,
            "percentile": self.target.percentile,
            "max_latency_ms": round(self.target.max_latency_s * 1000, 3),
            "observed_ms": (None if self.observed_s is None
                            else round(self.observed_s * 1000, 3)),
            "passed": self.passed,
            "note": self.note,
        }


@dataclass
class ValidationOutcome:
    """What the simulation said about one frontier candidate."""

    entry: FrontierEntry
    config: BenchmarkConfig
    content_hash: str
    cached: bool
    simulated_ops_per_s: float
    required_ops_per_s: float
    throughput_ok: bool
    slo_checks: list[SLOCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.throughput_ok and all(c.passed for c in self.slo_checks)

    @property
    def model_error(self) -> float:
        """Signed relative error of the model vs the simulation.

        Positive means the model over-promised (the interesting
        direction: optimism the validation step exists to catch).
        """
        if self.simulated_ops_per_s <= 0:
            return float("inf")
        achievable = min(self.entry.modeled.ops_per_s,
                         self.required_ops_per_s)
        return (achievable - self.simulated_ops_per_s) / achievable

    def row(self) -> dict:
        candidate = self.entry.candidate
        return {
            "store": candidate.store,
            "hardware": candidate.hardware.name,
            "n_nodes": candidate.n_nodes,
            "cost": round(candidate.cost, 3),
            "modeled_ops_per_s": round(self.entry.modeled.ops_per_s, 1),
            "simulated_ops_per_s": round(self.simulated_ops_per_s, 1),
            "required_ops_per_s": round(self.required_ops_per_s, 1),
            "binding": self.entry.modeled.binding,
            "throughput_ok": self.throughput_ok,
            "slo_checks": [c.row() for c in self.slo_checks],
            "passed": self.passed,
            # Deliberately no `cached` flag: the export must be
            # byte-identical whether the run was cold or replayed from
            # the result store.
            "content_hash": self.content_hash,
        }


def validation_config(entry: FrontierEntry, spec: LoadSpec,
                      settings: ValidationSettings) -> BenchmarkConfig:
    """The benchmark point that puts one candidate to the test.

    The offered load is bounded at the required rate (the Figure 15/16
    methodology): a candidate with headroom simply sustains the target,
    while an under-provisioned one visibly falls short.  The per-point
    seed derives from the spec seed and the candidate's identity, so
    points are statistically independent yet exactly reproducible.
    """
    candidate = entry.candidate
    return BenchmarkConfig(
        store=candidate.store,
        workload=spec.workload,
        n_nodes=candidate.n_nodes,
        cluster_spec=candidate.hardware.cluster_spec(),
        records_per_node=settings.records_per_node,
        measured_ops=settings.measured_ops,
        warmup_ops=settings.warmup_ops,
        seed=derive_seed(spec.seed, f"plan/{candidate.label()}"),
        target_throughput=spec.required_ops_per_s,
    )


def estimate_validation_cost(entries: list[FrontierEntry], spec: LoadSpec,
                             settings: ValidationSettings) -> float:
    """Cost units of simulating the frontier (the orchestrator's scale)."""
    return sum(
        estimate_cost_units(validation_config(entry, spec, settings))
        for entry in entries)


def _check_slos(result, targets: tuple[SLOTarget, ...]) -> list[SLOCheck]:
    checks: list[SLOCheck] = []
    histograms = {
        "read": result.read_latency,
        "write": result.write_latency,
        "scan": result.scan_latency,
    }
    for target in targets:
        histogram = histograms[target.op]
        if histogram.count == 0:
            # No operations of this type ran at validation scale —
            # vacuously true, but say so rather than claim a measurement.
            checks.append(SLOCheck(
                target=target, observed_s=None, passed=True,
                note=f"no {target.op} operations in the validation run"))
            continue
        observed = histogram.percentile(target.percentile)
        checks.append(SLOCheck(
            target=target, observed_s=observed,
            passed=observed <= target.max_latency_s))
    return checks


def validate_frontier(entries: list[FrontierEntry], spec: LoadSpec,
                      settings: ValidationSettings,
                      store: ResultStore | None = None,
                      jobs: int = 1,
                      progress=None) -> list[ValidationOutcome]:
    """Simulate every frontier candidate; outcomes in input order.

    Results route through ``store`` when given: candidates already
    simulated (this plan or any earlier one) are cache hits and never
    reach a worker, which is what makes iterating on a load spec cheap.
    """
    configs = [validation_config(entry, spec, settings)
               for entry in entries]
    point_outcomes: list[PointOutcome] = execute_grid(
        configs, jobs=jobs, store=store, progress=progress)
    by_hash = {outcome.content_hash: outcome for outcome in point_outcomes}

    outcomes: list[ValidationOutcome] = []
    required = spec.required_ops_per_s
    floor = required * (1.0 - settings.throughput_tolerance)
    for entry, config in zip(entries, configs):
        point = by_hash[config.content_hash()]
        result = point.result
        if result is None and store is not None:
            result = store.get(config)
        if result is None:  # pragma: no cover - defensive
            raise RuntimeError(
                f"no result for validated candidate "
                f"{entry.candidate.label()}")
        simulated = result.throughput_ops
        outcomes.append(ValidationOutcome(
            entry=entry,
            config=config,
            content_hash=point.content_hash,
            cached=point.cached,
            simulated_ops_per_s=simulated,
            required_ops_per_s=required,
            throughput_ok=simulated >= floor,
            slo_checks=_check_slos(result, spec.slos),
        ))
    return outcomes
