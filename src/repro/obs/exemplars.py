"""Exemplars: bounded trace references attached to metric cells.

An exported percentile answers *how slow*; an exemplar answers *which
operation* — the bridge from aggregate telemetry to a concrete span
tree.  :class:`ExemplarStore` keeps two bounded, deterministic grids:

* a **histogram grid** keyed ``(window, op, latency bucket)`` using the
  same log-bucket geometry as
  :class:`~repro.ycsb.stats.LatencyHistogram`, holding the first
  ``per_bucket`` trace references that landed in each cell — this is
  what the OpenMetrics ``# {trace_id="..."}`` annotations and the CSV
  export read;
* a **violation grid** keyed ``(window, SLO name)``, fed only with
  traces the tail sampler actually *kept*, so every trace ID a fired
  alert links to resolves to a retained span tree.

First-k retention per cell is deterministic under a fixed seed (arrival
order is simulation order), and every renderer iterates cells in sorted
key order.
"""

from __future__ import annotations

import csv
import io
import math
from typing import Optional

from repro.ycsb.stats import LatencyHistogram

__all__ = ["ExemplarStore", "latency_bucket", "bucket_lower_s"]


def latency_bucket(latency_s: float) -> int:
    """The :class:`LatencyHistogram` bucket index for ``latency_s``."""
    if latency_s <= LatencyHistogram.MIN_LATENCY:
        return 0
    index = int(math.log10(latency_s / LatencyHistogram.MIN_LATENCY)
                * LatencyHistogram.BUCKETS_PER_DECADE)
    return min(index, LatencyHistogram.N_BUCKETS - 1)


def bucket_lower_s(index: int) -> float:
    """The lower latency edge (seconds) of bucket ``index``."""
    if index <= 0:
        return 0.0
    return LatencyHistogram.MIN_LATENCY * 10 ** (
        index / LatencyHistogram.BUCKETS_PER_DECADE)


class ExemplarStore:
    """Bounded per-cell trace references for one run."""

    def __init__(self, window_s: float = 0.25, per_bucket: int = 2,
                 per_violation: int = 8):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if per_bucket < 1 or per_violation < 1:
            raise ValueError("per-cell capacities must be >= 1")
        self.window_s = window_s
        self.per_bucket = per_bucket
        self.per_violation = per_violation
        #: (window index, op, latency bucket) -> [(trace_id, latency_s)]
        self._cells: dict[tuple, list] = {}
        #: (window index, SLO name) -> [trace_id, ...]
        self._violations: dict[tuple, list] = {}
        self.offered = 0
        self.retained = 0

    def _window(self, now: float) -> int:
        return int(now / self.window_s)

    # -- writing -------------------------------------------------------------

    def offer(self, now: float, op: str, latency_s: float,
              trace_id: int) -> bool:
        """Offer one kept trace to its histogram cell (first-k wins)."""
        self.offered += 1
        key = (self._window(now), op, latency_bucket(latency_s))
        cell = self._cells.setdefault(key, [])
        if len(cell) >= self.per_bucket:
            return False
        cell.append((trace_id, latency_s))
        self.retained += 1
        return True

    def offer_violation(self, now: float, slo_name: str,
                        trace_id: int) -> bool:
        """Attach a kept trace to the SLO it violated (first-k wins)."""
        key = (self._window(now), slo_name)
        cell = self._violations.setdefault(key, [])
        if len(cell) >= self.per_violation:
            return False
        cell.append(trace_id)
        return True

    # -- reading -------------------------------------------------------------

    def violating(self, slo_name: str, t0: float, t1: float,
                  limit: Optional[int] = None) -> list:
        """Trace IDs that violated ``slo_name`` in ``[t0, t1)``.

        Ordered oldest-first; with ``limit`` the *most recent* IDs are
        returned — an alert should link to the operations that are
        failing now, not the first ones that ever did.
        """
        out: list[int] = []
        for (window, name), ids in sorted(self._violations.items()):
            if name != slo_name:
                continue
            start = window * self.window_s
            if start + self.window_s <= t0 or start >= t1:
                continue
            out.extend(ids)
        if limit is not None and len(out) > limit:
            out = out[-limit:]
        return out

    def trace_ids(self) -> list:
        """Every referenced trace ID, sorted and deduplicated."""
        ids = {tid for cell in self._cells.values() for tid, _ in cell}
        ids.update(tid for cell in self._violations.values()
                   for tid in cell)
        return sorted(ids)

    def prometheus_exemplars(self, metric: str = "op_latency") -> dict:
        """Per-op exemplar map for the Prometheus exporter.

        Maps ``metric{op="..."}`` channels to the slowest retained
        ``(trace_id, latency_s)`` exemplar — OpenMetrics allows one
        exemplar per sample line, and the slowest operation is the one
        worth one click.
        """
        best: dict[str, tuple] = {}
        for (window, op, bucket) in sorted(self._cells):
            for trace_id, latency_s in self._cells[(window, op, bucket)]:
                current = best.get(op)
                if current is None or latency_s > current[1]:
                    best[op] = (trace_id, latency_s)
        return {f'{metric}{{op="{op}"}}': best[op] for op in sorted(best)}

    # -- export --------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-ready dict of both grids, in sorted cell order."""
        return {
            "window_s": self.window_s,
            "offered": self.offered,
            "retained": self.retained,
            "buckets": [
                {
                    "t0": window * self.window_s,
                    "op": op,
                    "bucket": bucket,
                    "bucket_lower_s": bucket_lower_s(bucket),
                    "exemplars": [
                        {"trace_id": tid, "latency_s": lat}
                        for tid, lat in self._cells[(window, op, bucket)]
                    ],
                }
                for (window, op, bucket) in sorted(self._cells)
            ],
            "violations": [
                {
                    "t0": window * self.window_s,
                    "slo": name,
                    "trace_ids": list(self._violations[(window, name)]),
                }
                for (window, name) in sorted(self._violations)
            ],
        }

    def to_csv(self) -> str:
        """Histogram-grid exemplars as deterministic CSV rows."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(["window_start", "window_end", "op",
                         "bucket_lower_s", "trace_id", "latency_s"])
        for (window, op, bucket) in sorted(self._cells):
            start = window * self.window_s
            for trace_id, latency_s in self._cells[(window, op, bucket)]:
                writer.writerow([
                    f"{start:.6f}", f"{start + self.window_s:.6f}", op,
                    repr(bucket_lower_s(bucket)), trace_id,
                    repr(latency_s),
                ])
        return buffer.getvalue()
