"""repro.obs — the self-APM layer: the benchmark observing itself.

The paper's premise is that an APM product must watch millions of
metrics and surface the few that matter.  This package closes that loop
over the reproduction's own telemetry: declarative SLOs with
Google-SRE multi-window burn-rate alerting
(:mod:`~repro.obs.slo`), exemplar links from histogram cells to
concrete span trees (:mod:`~repro.obs.exemplars`), tail-based trace
sampling that keeps the traces incidents are made of
(:mod:`~repro.obs.tailsample`), an always-on flight recorder dumped on
breach or failure (:mod:`~repro.obs.recorder`), and the scenario
harness behind ``apmbench obs`` (:mod:`~repro.obs.harness`).

Everything runs on simulated time with bounded, deterministic state:
a fixed seed yields byte-identical alert logs, exemplar sets and
flight-recorder dumps.
"""

from repro.obs.exemplars import ExemplarStore
from repro.obs.harness import ObsReport, ObsScenario, run_obs_scenario
from repro.obs.layer import ObsLayer
from repro.obs.policy import (DEFAULT_RULES, SLO, BurnRateRule, ObsPolicy,
                              default_slos)
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SLOEngine, burn_rate, should_clear, should_fire
from repro.obs.tailsample import TailSampler

__all__ = [
    "SLO", "BurnRateRule", "ObsPolicy", "DEFAULT_RULES", "default_slos",
    "SLOEngine", "burn_rate", "should_fire", "should_clear",
    "ExemplarStore", "TailSampler", "FlightRecorder", "ObsLayer",
    "ObsScenario", "ObsReport", "run_obs_scenario",
]
