"""Tail-based trace sampling: keep/drop decided at completion.

Head sampling (the every-Nth :class:`~repro.trace.span.Tracer`) decides
*before* an operation runs, so it keeps mostly healthy traces and misses
exactly the operations an incident is made of.  Tail sampling defers the
decision to span-tree completion, when the outcome is known:

* **errored** operations are kept, tagged ``error:<kind>`` with the
  four-way error classification (store / fault / overload / deadline) —
  so deadline-expired and admission-rejected traces survive;
* **slow** successes over ``slow_threshold_s`` are kept (``slow``);
* every ``baseline_every``-th healthy operation is kept (``baseline``)
  so the retained set also shows what *normal* looked like;
* everything else is dropped after its spans were recorded.

The keep budget is a hard deterministic cap: once ``keep_budget`` traces
are retained, further keep-worthy traces are counted
(``budget_exhausted``) but dropped — first-come-first-kept in
simulation order, so a fixed seed retains the identical trace set.
"""

from __future__ import annotations

from typing import Optional

from repro.trace.span import Trace, Tracer

__all__ = ["TailSampler"]


class TailSampler(Tracer):
    """A :class:`Tracer` whose keep/drop decision happens at completion.

    ``candidate_every`` gates which operations open a span tree at all
    (the instrumentation cost); the tail decision then picks which
    finished trees are retained.  With the default of 1 every operation
    is a candidate.
    """

    def __init__(self, sim, slow_threshold_s: float,
                 keep_budget: int = 200, baseline_every: int = 50,
                 candidate_every: int = 1):
        super().__init__(sim, sample_every=candidate_every,
                         max_traces=keep_budget)
        if slow_threshold_s <= 0:
            raise ValueError("slow_threshold_s must be positive")
        if baseline_every < 0:
            raise ValueError("baseline_every must be >= 0")
        self.slow_threshold_s = slow_threshold_s
        self.keep_budget = keep_budget
        self.baseline_every = baseline_every
        #: keep reason -> retained count.
        self.kept_by_reason: dict[str, int] = {}
        #: Healthy candidates dropped by the baseline gate.
        self.discarded = 0
        #: Keep-worthy traces dropped because the budget was spent.
        self.budget_exhausted = 0
        self._healthy_counter = 0

    def decide(self, trace: Trace, error: bool,
               kind: Optional[str]) -> Optional[str]:
        """The keep reason for a finished trace (``None`` = drop)."""
        if error:
            return f"error:{kind or 'store'}"
        if trace.latency >= self.slow_threshold_s:
            return "slow"
        self._healthy_counter += 1
        if (self.baseline_every
                and (self._healthy_counter - 1) % self.baseline_every == 0):
            return "baseline"
        return None

    def complete(self, trace: Trace, error: bool = False,
                 kind: Optional[str] = None) -> Trace:
        """Close the root span, then decide the trace's fate."""
        trace.root.end = self.sim.now
        trace.error = error
        trace.error_kind = (kind or "store") if error else None
        self.sim.context = None
        reason = self.decide(trace, error, kind)
        if reason is not None and len(self.traces) >= self.keep_budget:
            self.budget_exhausted += 1
            reason = None
        trace.keep_reason = reason
        if reason is None:
            self.discarded += 1
        else:
            self.kept_by_reason[reason] = (
                self.kept_by_reason.get(reason, 0) + 1)
            self.traces.append(trace)
        return trace

    def stats(self) -> dict:
        """JSON-ready tail-sampling tallies."""
        return {
            "candidates": self._op_counter,
            "kept": len(self.traces),
            "kept_by_reason": dict(sorted(self.kept_by_reason.items())),
            "discarded": self.discarded,
            "budget_exhausted": self.budget_exhausted,
            "keep_budget": self.keep_budget,
            "slow_threshold_s": self.slow_threshold_s,
        }
