"""Declarative observability policy: SLOs, burn-rate rules, budgets.

An :class:`SLO` states an objective over the operations of one run —
"99% of reads complete within 50 ms", "99.9% of operations succeed",
"99.5% of operations are not rejected by admission control".  Each op is
classified *good* or *bad* against every objective in scope; the
resulting good/bad counters feed the error-budget burn-rate evaluation
in :class:`~repro.obs.slo.SLOEngine`.

A :class:`BurnRateRule` is the Google-SRE multi-window alert condition:
the alert fires only when the budget burn rate exceeds ``factor`` over
*both* a long window (evidence the problem is real) and a short window
(evidence it is still happening), and clears with hysteresis — the
``clear_ratio`` semantics ported from the deprecated
``repro.core.alerts`` trigger engine.

:class:`ObsPolicy` bundles the objectives with the tail-sampling,
exemplar and flight-recorder knobs.  Like
:class:`~repro.overload.policy.OverloadPolicy` it is a frozen dataclass
with a lossless ``to_dict``/``from_dict`` round-trip, and it is *not*
part of :class:`~repro.ycsb.runner.BenchmarkConfig` — observability is
an overlay on a run, not part of the workload's identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ycsb.stats import ERROR_KINDS

__all__ = ["SLO", "BurnRateRule", "ObsPolicy", "DEFAULT_RULES",
           "default_slos"]

#: Objective kinds an :class:`SLO` can state.
SLO_KINDS = ("latency", "error_rate", "availability")


@dataclass(frozen=True)
class SLO:
    """One service-level objective over the run's operations."""

    name: str
    #: ``latency`` — good iff the op succeeded within ``threshold_s``;
    #: ``error_rate`` — bad iff the op failed with one of
    #: ``error_kinds`` (all kinds when ``None``);
    #: ``availability`` — good iff the op succeeded at all.
    kind: str
    #: Target good fraction, e.g. ``0.99``; the error budget is
    #: ``1 - target``.
    target: float
    #: Latency bound (seconds); required for ``latency`` objectives.
    threshold_s: Optional[float] = None
    #: Error kinds charged against an ``error_rate`` objective
    #: (subset of :data:`repro.ycsb.stats.ERROR_KINDS`).
    error_kinds: Optional[tuple] = None
    #: Restrict the objective to these op names (``None`` = all ops).
    ops: Optional[tuple] = None

    def __post_init__(self):
        if self.kind not in SLO_KINDS:
            raise ValueError(f"kind must be one of {SLO_KINDS}, "
                             f"got {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.kind == "latency":
            if self.threshold_s is None or self.threshold_s <= 0:
                raise ValueError("latency objectives need threshold_s > 0")
        if self.error_kinds is not None:
            unknown = set(self.error_kinds) - set(ERROR_KINDS)
            if unknown:
                raise ValueError(f"unknown error kinds {sorted(unknown)}; "
                                 f"expected a subset of {ERROR_KINDS}")

    def classify(self, op: str, latency_s: float, error: bool,
                 error_kind: Optional[str]) -> Optional[bool]:
        """``True`` = good, ``False`` = bad, ``None`` = out of scope."""
        if self.ops is not None and op not in self.ops:
            return None
        if self.kind == "latency":
            return not error and latency_s <= self.threshold_s
        if self.kind == "error_rate":
            if not error:
                return True
            if self.error_kinds is None:
                return False
            return (error_kind or "store") not in self.error_kinds
        return not error  # availability

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "threshold_s": self.threshold_s,
            "error_kinds": (None if self.error_kinds is None
                            else list(self.error_kinds)),
            "ops": None if self.ops is None else list(self.ops),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SLO":
        return cls(
            name=payload["name"],
            kind=payload["kind"],
            target=payload["target"],
            threshold_s=payload["threshold_s"],
            error_kinds=(None if payload["error_kinds"] is None
                         else tuple(payload["error_kinds"])),
            ops=None if payload["ops"] is None else tuple(payload["ops"]),
        )


@dataclass(frozen=True)
class BurnRateRule:
    """A multi-window burn-rate alert condition (fast + slow window)."""

    name: str
    #: The slow window: evidence the burn is sustained, not a blip.
    long_s: float
    #: The fast window: evidence the burn is *still* happening, so a
    #: recovered incident stops paging.
    short_s: float
    #: Minimum burn rate (budget consumption speed as a multiple of the
    #: sustainable rate) over *both* windows for the alert to fire.
    factor: float
    #: Severity label carried into the alert log.
    severity: str = "page"
    #: Hysteresis: a firing alert clears only once the long-window burn
    #: retreats below ``factor * clear_ratio`` (ported from the
    #: deprecated ``repro.core.alerts`` engine).
    clear_ratio: float = 0.9

    def __post_init__(self):
        if self.long_s <= 0 or self.short_s <= 0:
            raise ValueError("burn-rate windows must be positive")
        if self.short_s >= self.long_s:
            raise ValueError("short_s must be smaller than long_s")
        if self.factor <= 0:
            raise ValueError("factor must be positive")
        if not 0.0 < self.clear_ratio <= 1.0:
            raise ValueError("clear_ratio must be in (0, 1]")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "long_s": self.long_s,
            "short_s": self.short_s,
            "factor": self.factor,
            "severity": self.severity,
            "clear_ratio": self.clear_ratio,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BurnRateRule":
        return cls(**payload)


#: The default fast/slow rule pair.  Simulated incidents play out over
#: seconds, not hours, so the windows are compressed but keep the
#: Google-SRE structure: a fast, high-factor page and a slower,
#: low-factor ticket.
DEFAULT_RULES = (
    BurnRateRule(name="page", long_s=2.0, short_s=0.5, factor=8.0,
                 severity="page"),
    BurnRateRule(name="ticket", long_s=6.0, short_s=1.5, factor=2.0,
                 severity="ticket"),
)


def default_slos(latency_slo_s: float = 0.25,
                 latency_target: float = 0.99,
                 availability_target: float = 0.999) -> tuple:
    """The standard objective set the CLI and benchmarks start from."""
    return (
        SLO(name="latency", kind="latency", target=latency_target,
            threshold_s=latency_slo_s),
        SLO(name="availability", kind="availability",
            target=availability_target),
        SLO(name="overload-errors", kind="error_rate", target=0.995,
            error_kinds=("overload", "deadline")),
    )


@dataclass(frozen=True)
class ObsPolicy:
    """Everything the observability layer needs to watch one run."""

    slos: tuple = field(default_factory=tuple)
    rules: tuple = DEFAULT_RULES
    #: Window width of the SLO good/bad series and the exemplar grid.
    window_s: float = 0.25
    #: Burn-rate evaluation cadence of the SLO engine process.
    tick_s: float = 0.25
    #: Retained exemplars per (window, op, latency-bucket) cell.
    exemplars_per_bucket: int = 2
    #: Retained violation exemplars per (window, SLO) cell.
    exemplars_per_violation: int = 8
    #: Exemplar trace IDs attached to one fired alert.
    max_alert_exemplars: int = 4
    #: Tail sampling: keep traces slower than this (``None`` derives the
    #: bound from the tightest latency objective, falling back to 0.25 s).
    tail_slow_threshold_s: Optional[float] = None
    #: Hard cap on kept traces (the deterministic keep budget).
    tail_keep_budget: int = 200
    #: Keep every Nth healthy trace as a baseline (0 = none).
    tail_baseline_every: int = 50
    #: Open a candidate span tree for every Nth operation.
    candidate_every: int = 1
    #: Flight-recorder ring capacity (entries).
    recorder_capacity: int = 256
    #: Max automatic dumps per run, and per-trigger dedupe gap.
    recorder_max_dumps: int = 8
    recorder_min_gap_s: float = 0.5

    def __post_init__(self):
        if self.window_s <= 0 or self.tick_s <= 0:
            raise ValueError("window_s and tick_s must be positive")
        if self.exemplars_per_bucket < 1:
            raise ValueError("exemplars_per_bucket must be >= 1")
        if self.exemplars_per_violation < 1:
            raise ValueError("exemplars_per_violation must be >= 1")
        if self.max_alert_exemplars < 0:
            raise ValueError("max_alert_exemplars must be >= 0")
        if (self.tail_slow_threshold_s is not None
                and self.tail_slow_threshold_s <= 0):
            raise ValueError("tail_slow_threshold_s must be positive")
        if self.tail_keep_budget < 1:
            raise ValueError("tail_keep_budget must be >= 1")
        if self.tail_baseline_every < 0:
            raise ValueError("tail_baseline_every must be >= 0")
        if self.candidate_every < 1:
            raise ValueError("candidate_every must be >= 1")
        if self.recorder_capacity < 1:
            raise ValueError("recorder_capacity must be >= 1")
        if self.recorder_max_dumps < 1:
            raise ValueError("recorder_max_dumps must be >= 1")
        if self.recorder_min_gap_s < 0:
            raise ValueError("recorder_min_gap_s must be >= 0")
        names = [slo.name for slo in self.slos]
        if len(names) != len(set(names)):
            raise ValueError("SLO names must be unique")
        rule_names = [rule.name for rule in self.rules]
        if len(rule_names) != len(set(rule_names)):
            raise ValueError("burn-rate rule names must be unique")

    def slow_threshold(self) -> float:
        """The tail-sampling latency bound actually in force."""
        if self.tail_slow_threshold_s is not None:
            return self.tail_slow_threshold_s
        bounds = [slo.threshold_s for slo in self.slos
                  if slo.kind == "latency" and slo.threshold_s is not None]
        return min(bounds) if bounds else 0.25

    def to_dict(self) -> dict:
        return {
            "slos": [slo.to_dict() for slo in self.slos],
            "rules": [rule.to_dict() for rule in self.rules],
            "window_s": self.window_s,
            "tick_s": self.tick_s,
            "exemplars_per_bucket": self.exemplars_per_bucket,
            "exemplars_per_violation": self.exemplars_per_violation,
            "max_alert_exemplars": self.max_alert_exemplars,
            "tail_slow_threshold_s": self.tail_slow_threshold_s,
            "tail_keep_budget": self.tail_keep_budget,
            "tail_baseline_every": self.tail_baseline_every,
            "candidate_every": self.candidate_every,
            "recorder_capacity": self.recorder_capacity,
            "recorder_max_dumps": self.recorder_max_dumps,
            "recorder_min_gap_s": self.recorder_min_gap_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ObsPolicy":
        data = dict(payload)
        data["slos"] = tuple(SLO.from_dict(s) for s in data["slos"])
        data["rules"] = tuple(BurnRateRule.from_dict(r)
                              for r in data["rules"])
        return cls(**data)
