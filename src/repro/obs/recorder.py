"""The flight recorder: a bounded ring of recent observability events.

Production APM systems keep an always-on, low-cost buffer of recent
activity so that *when* something breaks there is context from *before*
the break — the last spans, the last control decisions, the chaos event
that started it.  :class:`FlightRecorder` is that buffer on simulated
time: a fixed-capacity ring of ``{"t": ..., "kind": ..., ...}`` entries
that is snapshotted ("dumped") automatically on an SLO breach, a node
failure, or a simulation error.

Dumps are bounded (``max_dumps``) and deduplicated per trigger
(``min_gap_s``), so a burn-rate storm produces one postmortem artefact,
not hundreds.  Everything is JSON-ready and deterministic: entries carry
simulated timestamps only, and the ring is snapshotted in insertion
order.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded event ring with triggered, rate-limited dumps."""

    def __init__(self, sim, capacity: int = 256, max_dumps: int = 8,
                 min_gap_s: float = 0.5):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_dumps < 1:
            raise ValueError("max_dumps must be >= 1")
        if min_gap_s < 0:
            raise ValueError("min_gap_s must be >= 0")
        self.sim = sim
        self.capacity = capacity
        self.max_dumps = max_dumps
        self.min_gap_s = min_gap_s
        self.entries: deque = deque(maxlen=capacity)
        #: Total entries ever recorded (the ring only keeps the tail).
        self.recorded = 0
        #: Snapshot dicts, in trigger order.
        self.dumps: list[dict] = []
        #: Dump requests suppressed by the cap or the per-trigger gap.
        self.suppressed = 0
        self._last_by_trigger: dict[str, float] = {}

    def record(self, kind: str, **data) -> None:
        """Append one event to the ring at the current simulated time."""
        entry = {"t": self.sim.now, "kind": kind}
        entry.update(data)
        self.entries.append(entry)
        self.recorded += 1

    def dump(self, trigger: str, reason: str = "") -> Optional[dict]:
        """Snapshot the ring; ``None`` when rate-limited or capped."""
        now = self.sim.now
        last = self._last_by_trigger.get(trigger)
        if (len(self.dumps) >= self.max_dumps
                or (last is not None and now - last < self.min_gap_s)):
            self.suppressed += 1
            return None
        self._last_by_trigger[trigger] = now
        snapshot = {
            "t": now,
            "trigger": trigger,
            "reason": reason,
            "entries": [dict(entry) for entry in self.entries],
        }
        self.dumps.append(snapshot)
        return snapshot

    def to_payload(self) -> dict:
        """JSON-ready state: dumps plus the ring's final contents."""
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "suppressed": self.suppressed,
            "dumps": self.dumps,
            "ring": [dict(entry) for entry in self.entries],
        }
