"""Incident-scenario harness: open-loop load + chaos + observability.

:func:`run_obs_scenario` composes what ``apmbench obs`` and the
determinism suite share: an open-loop arrival process (optionally
shaped) against one store, a chaos schedule from the config, full
cluster telemetry, and an :class:`~repro.obs.layer.ObsLayer` watching
every measured operation.  The outcome is an :class:`ObsReport` — the
incident report: alerts fired with exemplar trace IDs, budget remaining
per SLO, the tail-sampled span trees those exemplars resolve to, the
flight-recorder dumps, and the Prometheus/CSV snapshots — all
provenance-stamped and byte-deterministic under a fixed seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.analysis.provenance import stamp
from repro.obs.layer import ObsLayer
from repro.obs.policy import ObsPolicy
from repro.overload.shapes import ArrivalShape

__all__ = ["ObsScenario", "ObsReport", "run_obs_scenario"]


@dataclass(frozen=True)
class ObsScenario:
    """Everything that defines one observed incident run."""

    #: The benchmark config: store, workload, fleet, seed, and the
    #: chaos schedule / overload policy the incident plays out under.
    config: object
    #: The observability policy watching the run.
    policy: ObsPolicy
    #: Offered rate (the shape's base rate), ops/s.
    offered_rate: float
    #: Offered-load horizon, simulated seconds.
    duration_s: float
    #: Arrivals before this time are driven but not measured.
    warmup_s: float = 0.0
    #: Arrival shape (``None`` = constant rate).
    shape: Optional[ArrivalShape] = None
    #: Availability-timeline bucket width (``None`` = no timeline).
    timeline_s: Optional[float] = 0.5
    #: Latency bound for the goodput point (defaults to the overload
    #: deadline, then to the open-loop default SLO).
    slo_s: Optional[float] = None
    #: Cap on span trees embedded in the export.
    max_export_traces: int = 100

    def resolved_slo_s(self) -> float:
        from repro.overload.openloop import DEFAULT_SLO_S

        if self.slo_s is not None:
            return self.slo_s
        overload = self.config.overload
        if overload is not None and overload.deadline_s is not None:
            return overload.deadline_s
        return DEFAULT_SLO_S

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "policy": self.policy.to_dict(),
            "offered_rate": self.offered_rate,
            "duration_s": self.duration_s,
            "warmup_s": self.warmup_s,
            "shape": None if self.shape is None else self.shape.to_dict(),
            "timeline_s": self.timeline_s,
            "slo_s": self.slo_s,
            "max_export_traces": self.max_export_traces,
        }


@dataclass(frozen=True)
class ObsReport:
    """One observed run: the incident report and all its evidence."""

    scenario: ObsScenario
    #: The open-loop goodput measurement (:class:`OverloadPoint` dict).
    point: dict
    #: Per-window arrival/in-SLO availability evidence.
    timeline: list
    #: The :class:`~repro.obs.layer.ObsLayer` bundle: alert log,
    #: budgets, exemplars, tail-sampling tallies, flight recorder.
    observability: dict
    #: Kept span trees, Chrome-trace format — what exemplar trace IDs
    #: resolve to.
    traces: dict
    #: Final registry snapshot with OpenMetrics exemplar annotations.
    prometheus: str
    #: Sampled cluster telemetry in the shared CSV layout.
    metrics_csv: str
    #: Histogram-grid exemplars as CSV.
    exemplars_csv: str

    @property
    def alerts(self) -> list:
        return self.observability["slo"]["alerts"]

    @property
    def budgets(self) -> dict:
        return self.observability["slo"]["budgets"]

    @property
    def dumps(self) -> list:
        return self.observability["flight_recorder"]["dumps"]

    def to_dict(self) -> dict:
        """The JSON export, provenance-stamped and byte-deterministic."""
        payload = {
            "scenario": self.scenario.to_dict(),
            "point": self.point,
            "timeline": self.timeline,
            "observability": self.observability,
            "traces": self.traces,
            "prometheus": self.prometheus,
            "metrics_csv": self.metrics_csv,
            "exemplars_csv": self.exemplars_csv,
        }
        return stamp(payload, self.scenario.config)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        """The human-readable incident report."""
        config = self.scenario.config
        point = self.point
        lines = [
            f"INCIDENT REPORT — {config.store}/"
            f"{config.workload.name} n={config.n_nodes} "
            f"seed={config.seed}",
            f"offered {point['offered_rate']:.0f} ops/s for "
            f"{point['duration_s']:g} s — goodput "
            f"{point['goodput']:.1f} ops/s "
            f"({point['in_slo']}/{point['arrivals']} arrivals in SLO, "
            f"{point['shed']} shed)",
            "",
            "SLO budgets:",
        ]
        firing = {(a["slo"], a["rule"]) for a in self.alerts
                  if a["kind"] == "fire"}
        cleared = {(a["slo"], a["rule"]) for a in self.alerts
                   if a["kind"] == "clear"}
        breached = {slo for slo, _ in firing - cleared}
        for name, remaining in self.budgets.items():
            flag = "  [BREACHED]" if name in breached else ""
            lines.append(f"  {name:<18} budget remaining "
                         f"{100.0 * remaining:6.1f}%{flag}")
        lines.append("")
        if self.alerts:
            lines.append(f"Alerts ({len(self.alerts)}):")
            for alert in self.alerts:
                ids = ",".join(str(t) for t in
                               alert["exemplar_trace_ids"]) or "-"
                lines.append(
                    f"  t={alert['t']:7.3f}  {alert['kind']:<5} "
                    f"{alert['severity']:<7} {alert['slo']:<18} "
                    f"burn {alert['burn_long']:.1f}x/"
                    f"{alert['burn_short']:.1f}x "
                    f"(>= {alert['factor']:g}x)  exemplars: {ids}")
        else:
            lines.append("Alerts: none fired")
        tail = self.observability["tail_sampling"]
        reasons = ", ".join(f"{k} {v}" for k, v in
                            tail["kept_by_reason"].items()) or "none"
        lines.append("")
        lines.append(
            f"Tail sampling: kept {tail['kept']} of "
            f"{tail['candidates']} candidates ({reasons}); "
            f"budget exhausted {tail['budget_exhausted']}")
        recorder = self.observability["flight_recorder"]
        if recorder["dumps"]:
            triggers = ", ".join(
                f"{d['trigger']} @{d['t']:.2f}" for d in recorder["dumps"])
            lines.append(
                f"Flight recorder: {len(recorder['dumps'])} dump(s) "
                f"({triggers}); {recorder['recorded']} entries recorded, "
                f"ring capacity {recorder['capacity']}")
        else:
            lines.append(
                f"Flight recorder: no dumps; {recorder['recorded']} "
                f"entries recorded, ring capacity {recorder['capacity']}")
        return "\n".join(lines)


def run_obs_scenario(scenario: ObsScenario) -> ObsReport:
    """Execute one observed incident scenario end to end."""
    from repro.analysis.prometheus import registry_to_prometheus
    from repro.analysis.trace_export import chrome_trace
    from repro.metrics.instrument import instrument_cluster
    from repro.metrics.registry import MetricsRegistry
    from repro.metrics.sampler import MetricsSampler
    from repro.overload.openloop import _OpenLoopRun

    run = _OpenLoopRun(scenario.config, scenario.offered_rate,
                       scenario.duration_s, scenario.warmup_s,
                       scenario.resolved_slo_s(), queue_sample_s=0.02,
                       shape=scenario.shape,
                       timeline_s=scenario.timeline_s)
    registry = MetricsRegistry(run.sim)
    instrument_cluster(registry, run.cluster)
    run.store.attach_metrics(registry)
    sampler = MetricsSampler(registry, interval_s=scenario.policy.tick_s)
    sampler.start()
    obs = ObsLayer(run.sim, scenario.policy, registry=registry)
    run.attach_obs(obs)
    obs.start()
    try:
        point = run.run()
    except Exception as exc:
        # The postmortem artefact survives even a crashed simulation.
        obs.note_failure(exc)
        raise
    finally:
        sampler.close()
    obs.close()
    kept = obs.tracer.traces[:scenario.max_export_traces]
    return ObsReport(
        scenario=scenario,
        point=point.to_dict(),
        timeline=(run.timeline() if scenario.timeline_s is not None
                  else []),
        observability=obs.to_payload(),
        traces=chrome_trace(kept),
        prometheus=registry_to_prometheus(
            registry, exemplars=obs.exemplars.prometheus_exemplars()),
        metrics_csv=sampler.series.to_csv(),
        exemplars_csv=obs.exemplars.to_csv(),
    )
