"""The SLO engine: error budgets and multi-window burn-rate alerts.

Every measured operation is classified good or bad against each
:class:`~repro.obs.policy.SLO` in scope; the counts land in a
:class:`~repro.metrics.timeseries.WindowedSeries` (``slo_good{...}`` /
``slo_bad{...}`` channels), the same representation the metrics sampler
uses, so the alert evidence exports through the shared CSV layout.

The engine runs as a simulation process ticking ``policy.tick_s``.  At
each tick, for every (SLO, rule) pair it computes the **burn rate** —
the bad fraction divided by the budget fraction ``1 - target`` — over
the rule's long and short windows, and applies the Google-SRE condition:

* **fire** when *both* windows burn at >= ``factor`` (sustained *and*
  ongoing);
* **clear** with hysteresis once the long-window burn retreats below
  ``factor * clear_ratio``;
* **missing data never changes state** — a window with no classified
  operations is an ingestion gap, not an incident (semantics ported
  from the deprecated ``repro.core.alerts`` engine, which this module
  replaces as the canonical alerting path).

Fired alerts carry provenance-free, JSON-ready evidence: both burn
rates, the cumulative budget remaining, and up to
``max_alert_exemplars`` trace IDs of kept traces that violated the
objective inside the long window.  Each fire also dumps the flight
recorder, so every page ships its own postmortem context.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.timeseries import WindowedSeries
from repro.obs.policy import SLO, ObsPolicy

__all__ = ["SLOEngine", "burn_rate", "should_fire", "should_clear"]


def burn_rate(good: float, bad: float, target: float) -> float:
    """Budget burn speed: bad fraction over the budget fraction.

    1.0 means the budget is being spent exactly at the sustainable
    rate; ``1 / (1 - target)`` is the ceiling (everything failing).
    Zero activity burns nothing.
    """
    total = good + bad
    if total <= 0:
        return 0.0
    return (bad / total) / (1.0 - target)


def should_fire(burn_long: float, burn_short: float,
                factor: float) -> bool:
    """The multi-window condition: both windows at or over ``factor``."""
    return burn_long >= factor and burn_short >= factor


def should_clear(burn_long: float, factor: float,
                 clear_ratio: float) -> bool:
    """Hysteresis: clear once the long burn is below the clear line."""
    return burn_long < factor * clear_ratio


def _chan(prefix: str, slo_name: str) -> str:
    return f'{prefix}{{slo="{slo_name}"}}'


class SLOEngine:
    """Classifies operations and evaluates burn-rate rules over them."""

    def __init__(self, sim, policy: ObsPolicy, recorder=None,
                 exemplars=None):
        self.sim = sim
        self.policy = policy
        self.recorder = recorder
        self.exemplars = exemplars
        #: Good/bad counts on the shared windowed-series representation.
        self.series = WindowedSeries(policy.window_s)
        #: Cumulative [good, bad] per SLO (budget accounting).
        self._totals = {slo.name: [0, 0] for slo in policy.slos}
        #: The deterministic alert log: fire/clear dicts in time order.
        self.alerts: list[dict] = []
        self._firing: dict[tuple, bool] = {}
        self.evaluations = 0
        self._last_eval = 0.0
        self._stopped = False
        self._process = None

    # -- classification ------------------------------------------------------

    def note_op(self, now: float, op: str, latency_s: float, error: bool,
                error_kind: Optional[str] = None) -> list:
        """Classify one measured op; returns the SLO names it violated."""
        violated = []
        for slo in self.policy.slos:
            verdict = slo.classify(op, latency_s, error, error_kind)
            if verdict is None:
                continue
            if verdict:
                self._totals[slo.name][0] += 1
                self.series.add(now, _chan("slo_good", slo.name))
            else:
                self._totals[slo.name][1] += 1
                self.series.add(now, _chan("slo_bad", slo.name))
                violated.append(slo.name)
        return violated

    # -- budget arithmetic ---------------------------------------------------

    def window_counts(self, slo: SLO, t0: float, t1: float) -> tuple:
        """(good, bad) classified into ``[t0, t1)`` for ``slo``."""
        return (self.series.sum_between(_chan("slo_good", slo.name), t0, t1),
                self.series.sum_between(_chan("slo_bad", slo.name), t0, t1))

    def burn_rate(self, slo: SLO, t0: float, t1: float) -> float:
        """The burn rate of ``slo`` over ``[t0, t1)``."""
        good, bad = self.window_counts(slo, t0, t1)
        return burn_rate(good, bad, slo.target)

    def budget_remaining(self, slo: SLO) -> float:
        """Cumulative error-budget fraction left (never negative)."""
        good, bad = self._totals[slo.name]
        total = good + bad
        if total == 0:
            return 1.0
        allowed = total * (1.0 - slo.target)
        return max(0.0, 1.0 - bad / allowed)

    def budgets(self) -> dict:
        """Remaining budget per SLO, in sorted name order."""
        return {slo.name: self.budget_remaining(slo)
                for slo in sorted(self.policy.slos, key=lambda s: s.name)}

    def is_firing(self, slo_name: str, rule_name: str) -> bool:
        return self._firing.get((slo_name, rule_name), False)

    # -- the evaluation loop -------------------------------------------------

    def start(self):
        """Spawn the burn-rate evaluation process."""
        if self._process is None:
            self._process = self.sim.process(self._run(), name="slo-engine")
        return self._process

    def stop(self) -> None:
        self._stopped = True

    def _run(self):
        tick = self.policy.tick_s
        while not self._stopped:
            yield self.sim.timeout(tick)
            if self._stopped:
                break
            self._evaluate(self.sim.now)

    def _evaluate(self, now: float) -> None:
        self.evaluations += 1
        self._last_eval = now
        for slo in self.policy.slos:
            for rule in self.policy.rules:
                key = (slo.name, rule.name)
                firing = self._firing.get(key, False)
                good_l, bad_l = self.window_counts(
                    slo, max(0.0, now - rule.long_s), now)
                if good_l + bad_l <= 0:
                    continue  # missing data never fires (or clears)
                burn_long = burn_rate(good_l, bad_l, slo.target)
                burn_short = self.burn_rate(
                    slo, max(0.0, now - rule.short_s), now)
                if not firing and should_fire(burn_long, burn_short,
                                              rule.factor):
                    self._firing[key] = True
                    self._emit(now, slo, rule, "fire", burn_long,
                               burn_short)
                elif firing and should_clear(burn_long, rule.factor,
                                             rule.clear_ratio):
                    self._firing[key] = False
                    self._emit(now, slo, rule, "clear", burn_long,
                               burn_short)

    def _emit(self, now: float, slo: SLO, rule, kind: str,
              burn_long: float, burn_short: float) -> None:
        exemplar_ids: list = []
        if kind == "fire" and self.exemplars is not None:
            exemplar_ids = self.exemplars.violating(
                slo.name, now - rule.long_s, now,
                limit=self.policy.max_alert_exemplars)
        alert = {
            "t": now,
            "slo": slo.name,
            "rule": rule.name,
            "severity": rule.severity,
            "kind": kind,
            "burn_long": burn_long,
            "burn_short": burn_short,
            "factor": rule.factor,
            "budget_remaining": self.budget_remaining(slo),
            "exemplar_trace_ids": exemplar_ids,
        }
        self.alerts.append(alert)
        if self.recorder is not None:
            self.recorder.record(f"alert-{kind}", slo=slo.name,
                                 rule=rule.name, severity=rule.severity,
                                 burn_long=burn_long)
            if kind == "fire":
                self.recorder.dump(
                    "slo-breach",
                    reason=(f"{slo.name}/{rule.name} burning "
                            f"{burn_long:.1f}x over both windows"))

    def close(self) -> None:
        """Stop the loop and run one final evaluation at ``sim.now``.

        A run that ends mid-tick still gets its last partial window
        judged, so short scenarios cannot end with an un-evaluated
        breach.
        """
        self._stopped = True
        if self.sim.now > self._last_eval:
            self._evaluate(self.sim.now)

    # -- export --------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-ready engine state: alert log, budgets, evidence CSV."""
        return {
            "alerts": self.alerts,
            "budgets": self.budgets(),
            "evaluations": self.evaluations,
            "series_csv": self.series.to_csv(),
            "totals": {
                name: {"good": counts[0], "bad": counts[1]}
                for name, counts in sorted(self._totals.items())
            },
        }
