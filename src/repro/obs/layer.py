"""The composition hub: one object wiring SLOs, exemplars, tail
sampling and the flight recorder into a running benchmark.

:class:`ObsLayer` is what a harness attaches to a run.  Per measured
operation it receives one :meth:`note_op` call (from the closed-loop
:class:`~repro.ycsb.client.ClientThread` or the open-loop
:class:`~repro.overload.openloop._OpenLoopRun`) and fans the outcome
out: SLO classification, per-op latency histograms (when a metrics
registry is attached), exemplar retention for *kept* traces, and
flight-recorder entries for errors and slow operations.  Because only
kept traces are offered as exemplars, every trace ID an alert or an
exported histogram references resolves to a retained span tree.

When no SLOs are configured the layer is inert by construction — the
harnesses skip the hooks entirely — so the fast path of an
observability-free run is untouched (the kernel-smoke throughput gate
pins this).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.exemplars import ExemplarStore
from repro.obs.policy import ObsPolicy
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SLOEngine
from repro.obs.tailsample import TailSampler

__all__ = ["ObsLayer"]


class _NodeEventListener:
    """Chaos-controller listener: node lifecycle into the recorder."""

    def __init__(self, recorder: FlightRecorder):
        self.recorder = recorder

    def on_node_down(self, node) -> None:
        self.recorder.record("node-down", node=node.name)
        self.recorder.dump("node-failure", reason=f"{node.name} went down")

    def on_node_up(self, node) -> None:
        self.recorder.record("node-up", node=node.name)


class ObsLayer:
    """Everything the observability tentpole attaches to one run."""

    def __init__(self, sim, policy: ObsPolicy, registry=None,
                 candidate_every: Optional[int] = None):
        self.sim = sim
        self.policy = policy
        self.registry = registry
        self.recorder = FlightRecorder(
            sim, capacity=policy.recorder_capacity,
            max_dumps=policy.recorder_max_dumps,
            min_gap_s=policy.recorder_min_gap_s)
        self.exemplars = ExemplarStore(
            window_s=policy.window_s,
            per_bucket=policy.exemplars_per_bucket,
            per_violation=policy.exemplars_per_violation)
        self.engine = SLOEngine(sim, policy, recorder=self.recorder,
                                exemplars=self.exemplars)
        self.slow_threshold_s = policy.slow_threshold()
        self.tracer = TailSampler(
            sim, self.slow_threshold_s,
            keep_budget=policy.tail_keep_budget,
            baseline_every=policy.tail_baseline_every,
            candidate_every=(candidate_every if candidate_every is not None
                             else policy.candidate_every))
        self.ops_observed = 0

    def start(self) -> None:
        """Launch the SLO engine's evaluation process."""
        self.engine.start()

    def attach_chaos(self, chaos) -> None:
        """Feed chaos actions and node lifecycle into the recorder."""
        chaos.recorder = self.recorder
        chaos.subscribe(_NodeEventListener(self.recorder))

    # -- the per-operation hook ----------------------------------------------

    def note_op(self, op: str, latency_s: float, error: bool,
                error_kind: Optional[str] = None, trace=None) -> None:
        """Fold one measured operation's outcome into every collector."""
        now = self.sim.now
        self.ops_observed += 1
        violated = self.engine.note_op(now, op, latency_s, error,
                                       error_kind)
        if self.registry is not None:
            self.registry.histogram(
                "op_latency", window_s=self.policy.window_s,
                op=op).observe(latency_s)
        kept = trace is not None and trace.keep_reason is not None
        trace_id = trace.trace_id if kept else None
        if kept:
            self.exemplars.offer(now, op, latency_s, trace.trace_id)
            for slo_name in violated:
                self.exemplars.offer_violation(now, slo_name,
                                               trace.trace_id)
        if error:
            self.recorder.record("op-error", op=op,
                                 error_kind=error_kind or "store",
                                 latency_s=latency_s, trace_id=trace_id)
        elif latency_s >= self.slow_threshold_s:
            self.recorder.record("op-slow", op=op, latency_s=latency_s,
                                 trace_id=trace_id)

    def note_failure(self, exc: BaseException) -> None:
        """Record a simulation error and force a postmortem dump."""
        self.recorder.record("simulation-error",
                             error=type(exc).__name__, detail=str(exc))
        self.recorder.dump("simulation-error", reason=str(exc))

    def close(self) -> None:
        """End-of-run: final burn-rate evaluation over the last window."""
        self.engine.close()

    # -- export --------------------------------------------------------------

    def to_payload(self) -> dict:
        """The JSON-ready observability bundle for one run."""
        return {
            "policy": self.policy.to_dict(),
            "ops_observed": self.ops_observed,
            "slo": self.engine.to_payload(),
            "exemplars": self.exemplars.to_payload(),
            "tail_sampling": self.tracer.stats(),
            "flight_recorder": self.recorder.to_payload(),
        }
