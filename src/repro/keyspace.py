"""The benchmark key space.

YCSB derives record keys by hashing a sequential record number and
prefixing it with ``user``; the resulting keys are uniformly distributed
both in hash space and — because the hash is rendered zero-padded — in
lexicographic order.  This module pins down that format so that:

* range-partitioned stores (HBase regions) can split the key space into
  equal lexicographic slices,
* cost models (MySQL's un-LIMITed tail scans) can price "all rows with a
  key >= start" without materialising them,
* workload generators and stores agree on key width (the paper's keys
  are 25 bytes; Section 3).
"""

from __future__ import annotations

from repro.hashing import murmur64a

__all__ = ["KEY_PREFIX", "KEY_DIGITS", "KEY_LENGTH", "format_key",
           "lex_position"]

KEY_PREFIX = "user"
#: Digits after the prefix: 25-byte keys, as specified in Section 3.
KEY_DIGITS = 21
KEY_LENGTH = len(KEY_PREFIX) + KEY_DIGITS
#: Keys encode a 64-bit hash left-padded to KEY_DIGITS decimal digits,
#: so the numeric and lexicographic orders coincide.
_HASH_SPACE = 2**64


def format_key(record_number: int) -> str:
    """The 25-byte key for ``record_number`` (FNV-style scattering).

    Sequential record numbers map to uniformly scattered keys, exactly
    like YCSB's hashed key chooser.
    """
    scattered = murmur64a(record_number.to_bytes(8, "big"))
    return f"{KEY_PREFIX}{scattered:0{KEY_DIGITS}d}"


def lex_position(key: str) -> float:
    """Lexicographic position of ``key`` within the key space, in [0, 1).

    Exact for well-formed benchmark keys; arbitrary strings fall back to
    a hash-based position (still uniform over random keys).
    """
    digits = key[len(KEY_PREFIX):]
    if key.startswith(KEY_PREFIX) and digits.isdigit():
        return min(int(digits) / _HASH_SPACE, 1.0 - 2**-53)
    return murmur64a(key.encode("utf-8"), seed=0x51CA7) / 2**64
