"""Target-throughput throttling (Figures 15/16).

Section 5.6 bounds the offered load to 50-95% of each system's previously
measured maximum throughput.  YCSB implements this with a per-thread
inter-operation sleep; we model the same with a shared token bucket in
simulated time: each operation must claim a token, and tokens accrue at
the target rate.
"""

from __future__ import annotations

from repro.sim.kernel import Simulator

__all__ = ["Throttle"]


class Throttle:
    """A token bucket granting operation slots at a fixed rate."""

    def __init__(self, sim: Simulator, target_ops_per_s: float):
        if target_ops_per_s <= 0:
            raise ValueError("target rate must be positive")
        self.sim = sim
        self.target = target_ops_per_s
        self._interval = 1.0 / target_ops_per_s
        self._next_slot = 0.0
        self.granted = 0

    def acquire(self):
        """Process: wait until the next operation slot is available."""
        now = self.sim.now
        slot = max(now, self._next_slot)
        self._next_slot = slot + self._interval
        self.granted += 1
        if slot > now:
            yield self.sim.timeout(slot - now)
