"""Latency histograms and run summaries.

YCSB reports per-operation-type latency statistics and overall
throughput; this module provides the same, backed by a logarithmically
bucketed histogram so percentile queries stay O(buckets) regardless of
the operation count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.faults.availability import AvailabilityTimeline
from repro.stores.base import OpType
from repro.trace.breakdown import ComponentBreakdown

__all__ = ["ERROR_KINDS", "LatencyHistogram", "RunStats"]

#: Error classification recorded alongside per-op error counts:
#: ``store`` — semantic store failure (OpError / failed result);
#: ``fault`` — infrastructure fault that exhausted its retries;
#: ``overload`` — admission-control rejection (queue full / shed);
#: ``deadline`` — the op's deadline expired.
ERROR_KINDS = ("store", "fault", "overload", "deadline")


class LatencyHistogram:
    """A log-bucketed latency histogram over (1 us, ~1000 s)."""

    MIN_LATENCY = 1e-6
    BUCKETS_PER_DECADE = 20
    N_BUCKETS = 9 * BUCKETS_PER_DECADE  # up to 10^3 seconds

    def __init__(self):
        self._counts = [0] * self.N_BUCKETS
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self.max = 0.0
        self.errors = 0
        #: Error counts split by class (see :data:`ERROR_KINDS`), so
        #: rejected/expired ops stay distinguishable from infrastructure
        #: faults in per-op error stats.
        self.error_kinds: dict[str, int] = {}

    @property
    def min(self) -> float:
        """Smallest recorded latency (0 when empty, like ``max``)."""
        return self._min if self.count else 0.0

    def _bucket(self, latency_s: float) -> int:
        if latency_s <= self.MIN_LATENCY:
            return 0
        index = int(math.log10(latency_s / self.MIN_LATENCY)
                    * self.BUCKETS_PER_DECADE)
        return min(index, self.N_BUCKETS - 1)

    def record(self, latency_s: float, error: bool = False,
               kind: Optional[str] = None) -> None:
        """Add one measured operation.

        ``kind`` classifies an error (defaults to ``"store"``); it is
        ignored for successful operations.
        """
        if latency_s < 0:
            raise ValueError("latency cannot be negative")
        self.count += 1
        self.total += latency_s
        self._min = min(self._min, latency_s)
        self.max = max(self.max, latency_s)
        self._counts[self._bucket(latency_s)] += 1
        if error:
            self.errors += 1
            key = kind or "store"
            self.error_kinds[key] = self.error_kinds.get(key, 0) + 1

    @property
    def mean(self) -> float:
        """Average latency in seconds (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The latency below which ``p`` percent of operations fall."""
        if not 0 < p <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if self.count == 0:
            return 0.0
        target = math.ceil(self.count * p / 100.0)
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= target:
                # Upper edge of the bucket, clamped to the observed range
                # so estimates never exceed ``max`` (a single sample's
                # bucket edge can overshoot it) or undercut ``min``.
                edge = self.MIN_LATENCY * 10 ** (
                    (index + 1) / self.BUCKETS_PER_DECADE
                )
                return min(max(edge, self._min), self.max)
        return self.max

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram into this one."""
        for i, c in enumerate(other._counts):
            self._counts[i] += c
        self.count += other.count
        self.total += other.total
        self._min = min(self._min, other._min)
        self.max = max(self.max, other.max)
        self.errors += other.errors
        for kind, n in other.error_kinds.items():
            self.error_kinds[kind] = self.error_kinds.get(kind, 0) + n


@dataclass
class RunStats:
    """Everything measured during one benchmark run."""

    histograms: dict[OpType, LatencyHistogram] = field(default_factory=dict)
    operations: int = 0
    errors: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    #: Windowed throughput/error series spanning the *whole* run (warm-up
    #: included) — attached by the runner for chaos experiments.
    timeline: Optional[AvailabilityTimeline] = None
    #: Per-component latency attribution over the sampled traces
    #: (populated lazily by :meth:`note_trace` when tracing is on).
    breakdown: Optional[ComponentBreakdown] = None

    def histogram(self, op: OpType) -> LatencyHistogram:
        """The histogram for ``op``, created on first use."""
        if op not in self.histograms:
            self.histograms[op] = LatencyHistogram()
        return self.histograms[op]

    def record(self, op: OpType, latency_s: float,
               error: bool = False, kind: Optional[str] = None) -> None:
        """Add one completed operation."""
        self.histogram(op).record(latency_s, error, kind)
        self.operations += 1
        if error:
            self.errors += 1

    def error_kind_total(self, kind: str) -> int:
        """Errors of ``kind`` summed over all operation types."""
        return sum(h.error_kinds.get(kind, 0)
                   for h in self.histograms.values())

    @property
    def rejected_ops(self) -> int:
        """Ops that failed with an admission-control rejection."""
        return self.error_kind_total("overload")

    @property
    def expired_ops(self) -> int:
        """Ops that failed because their deadline passed."""
        return self.error_kind_total("deadline")

    def note_op(self, now: float, error: bool) -> None:
        """Feed the availability timeline (every completed op, always).

        Unlike :meth:`record`, this ignores the measurement window: the
        timeline exists to show behaviour *over time* — degradation during
        an outage, recovery after restart — so trimming warm-up would hide
        exactly the transitions it is for.
        """
        if self.timeline is not None:
            self.timeline.record(now, error)

    def note_trace(self, trace) -> None:
        """Fold one sampled trace into the per-component breakdown."""
        if self.breakdown is None:
            self.breakdown = ComponentBreakdown()
        self.breakdown.add_trace(trace)

    @property
    def error_rate(self) -> float:
        """Errors as a fraction of measured operations."""
        return self.errors / self.operations if self.operations else 0.0

    @property
    def duration(self) -> float:
        """Measured (simulated) wall time of the run."""
        return max(0.0, self.finished_at - self.started_at)

    @property
    def throughput(self) -> float:
        """Operations per simulated second."""
        return self.operations / self.duration if self.duration > 0 else 0.0

    def latency(self, op: OpType) -> float:
        """Mean latency for ``op`` (0 when that op never ran)."""
        histogram = self.histograms.get(op)
        return histogram.mean if histogram else 0.0

    def summary(self) -> Mapping[str, float]:
        """A flat dict of the headline numbers."""
        out: dict[str, float] = {
            "throughput_ops": self.throughput,
            "operations": float(self.operations),
            "errors": float(self.errors),
            "error_rate": self.error_rate,
            "duration_s": self.duration,
        }
        for op, histogram in self.histograms.items():
            out[f"{op.value}_mean_s"] = histogram.mean
            out[f"{op.value}_p95_s"] = histogram.percentile(95)
            out[f"{op.value}_p99_s"] = histogram.percentile(99)
            out[f"{op.value}_errors"] = float(histogram.errors)
            out[f"{op.value}_error_rate"] = (
                histogram.errors / histogram.count if histogram.count else 0.0
            )
            for kind, n in sorted(histogram.error_kinds.items()):
                out[f"{op.value}_{kind}_errors"] = float(n)
        return out
