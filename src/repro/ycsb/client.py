"""Closed-loop client threads.

Each thread models one YCSB worker: it owns a store connection, draws
operations from the workload mix, executes them synchronously, and
records latencies.  Threads run "as intensively as possible" (Section 3)
unless a :class:`~repro.ycsb.throttle.Throttle` bounds the offered load.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.faults import FaultError
from repro.storage.record import RecordSchema
from repro.stores.base import OpError, OpType, RetryPolicy, StoreSession
from repro.ycsb.generator import KeySequence, generate_record
from repro.ycsb.stats import RunStats
from repro.ycsb.throttle import Throttle
from repro.ycsb.workload import Workload

__all__ = ["RunControl", "ClientThread"]


@dataclass
class RunControl:
    """Shared run state: warm-up accounting and the stop condition."""

    warmup_ops: int
    measured_ops: int
    completed: int = 0
    measuring: bool = False
    done: bool = False

    def __post_init__(self):
        # With no warm-up the measurement window opens immediately.
        if self.warmup_ops <= 0:
            self.measuring = True

    def note_completion(self, stats: RunStats, now: float) -> None:
        """Count one finished operation; manage the measurement window."""
        self.completed += 1
        if not self.measuring and self.completed >= self.warmup_ops:
            self.measuring = True
            stats.started_at = now
        if (self.measuring
                and self.completed >= self.warmup_ops + self.measured_ops
                and not self.done):
            self.done = True
            stats.finished_at = now


class ClientThread:
    """One synchronous workload-generator thread."""

    def __init__(self, session: StoreSession, workload: Workload,
                 chooser, sequence: KeySequence, stats: RunStats,
                 control: RunControl, rng: random.Random,
                 schema: RecordSchema, throttle: Throttle | None = None,
                 retry: RetryPolicy | None = None, tracer=None):
        self.session = session
        self.workload = workload
        self.chooser = chooser
        self.sequence = sequence
        self.stats = stats
        self.control = control
        self.rng = rng
        self.schema = schema
        self.throttle = throttle
        self.retry = retry if retry is not None else session.store.retry_policy()
        self.tracer = tracer
        self._op_table = workload.op_table()

    def _draw_op(self) -> OpType:
        roll = self.rng.random()
        for op, threshold in self._op_table:
            if roll <= threshold:
                return op
        return self._op_table[-1][0]

    def run(self):
        """Process body: issue operations until the run is complete."""
        sim = self.session.store.sim
        while not self.control.done:
            if self.throttle is not None:
                yield from self.throttle.acquire()
                if self.control.done:
                    break
            op = self._draw_op()
            # Draw the operation's arguments once, before any attempt:
            # a retry re-issues the *same* operation, it does not burn a
            # fresh key from the generator streams.
            fields = None
            scan_length = 0
            if op is OpType.INSERT:
                record = generate_record(self.sequence.take(), self.schema)
                key, fields = record.key, record.fields
            elif op is OpType.UPDATE:
                record = generate_record(
                    self.chooser.next_record_number(), self.schema)
                key, fields = record.key, record.fields
            else:  # READ / SCAN / DELETE
                key = generate_record(
                    self.chooser.next_record_number(), self.schema
                ).key
                if op is OpType.SCAN:
                    scan_length = self.workload.scan_length
            # Workload-loop and driver dispatch work happens before YCSB
            # starts the operation timer.
            yield from self.session.store.dispatch_cpu(self.session.client)
            started = sim.now
            # Sample traces only inside the measurement window, so the
            # trace set matches the latencies the histograms report.
            trace = None
            if (self.tracer is not None and self.control.measuring
                    and not self.control.done
                    and self.tracer.should_sample()):
                trace = self.tracer.begin(op.value, key, self.session.index)
            error = False
            attempt = 1
            while True:
                try:
                    result = yield from self.session.execute(
                        op, key, fields=fields, scan_length=scan_length
                    )
                    error = result is False
                    break
                except OpError:
                    # Semantic failure (e.g. Redis OOM): retrying cannot
                    # help, YCSB records it and moves on.
                    error = True
                    break
                except FaultError:
                    # Infrastructure fault: the driver reconnects with
                    # backoff, inside the timed call.
                    if attempt >= self.retry.max_attempts:
                        error = True
                        break
                    backoff = self.retry.backoff_for(attempt)
                    attempt += 1
                    if backoff > 0:
                        yield sim.timeout(backoff)
            latency = sim.now - started
            if trace is not None:
                self.tracer.complete(trace, error)
            self.stats.note_op(sim.now, error)
            if self.control.measuring and not self.control.done:
                self.stats.record(op, latency, error)
                if trace is not None:
                    self.stats.note_trace(trace)
            self.control.note_completion(self.stats, sim.now)
