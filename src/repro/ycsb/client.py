"""Closed-loop client threads.

Each thread models one YCSB worker: it owns a store connection, draws
operations from the workload mix, executes them synchronously, and
records latencies.  Threads run "as intensively as possible" (Section 3)
unless a :class:`~repro.ycsb.throttle.Throttle` bounds the offered load.

With an overload policy active, each operation additionally carries a
deadline (stamped into the kernel's per-process ``sim.deadline`` slot so
the whole stack can abandon late work), and retries are governed by a
shared retry budget and circuit breaker — see :func:`attempt_op` for the
exact semantics and error classification.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.sim.faults import (DeadlineExceededError, FaultError,
                              OverloadError)
from repro.storage.record import RecordSchema
from repro.stores.base import OpError, OpType, RetryPolicy, StoreSession
from repro.ycsb.generator import KeySequence, generate_record
from repro.ycsb.stats import RunStats
from repro.ycsb.throttle import Throttle
from repro.ycsb.workload import Workload

__all__ = ["RunControl", "ClientThread", "attempt_op"]


def attempt_op(session: StoreSession, op: OpType, key: str, fields,
               scan_length: int, retry: RetryPolicy, *,
               deadline: Optional[float] = None, budget=None, breaker=None):
    """Process body: execute one operation under the full retry policy.

    Returns ``(error, kind)`` where ``kind`` classifies a failure (see
    :data:`repro.ycsb.stats.ERROR_KINDS`):

    * :class:`OpError` / a ``False`` result → ``"store"``, never retried;
    * :class:`DeadlineExceededError` → ``"deadline"``, never retried
      (the op is already late);
    * :class:`OverloadError` → ``"overload"``; other
      :class:`FaultError` → ``"fault"``.  Both retry with backoff, but
      only while attempts remain, the deadline has not passed, the
      circuit breaker allows the target node, and the retry budget has a
      token — each gate failing surfaces the triggering error's kind.

    Shared by the closed-loop :class:`ClientThread` and the open-loop
    overload runner so both report identical semantics.
    """
    sim = session.store.sim
    attempt = 1
    while True:
        try:
            result = yield from session.execute(
                op, key, fields=fields, scan_length=scan_length
            )
            if result is False:
                return True, "store"
            return False, None
        except OpError:
            # Semantic failure (e.g. Redis OOM): retrying cannot help.
            return True, "store"
        except DeadlineExceededError:
            return True, "deadline"
        except FaultError as exc:
            kind = "overload" if isinstance(exc, OverloadError) else "fault"
            if attempt >= retry.max_attempts:
                return True, kind
            if deadline is not None and sim.now >= deadline:
                return True, "deadline"
            if breaker is not None and not breaker.allow_retry(exc):
                return True, kind
            if budget is not None and not budget.try_spend(sim.now):
                return True, kind
            # The driver reconnects with backoff, inside the timed call.
            backoff = retry.backoff_for(attempt)
            attempt += 1
            if backoff > 0:
                yield sim.timeout(backoff)


@dataclass
class RunControl:
    """Shared run state: warm-up accounting and the stop condition."""

    warmup_ops: int
    measured_ops: int
    completed: int = 0
    measuring: bool = False
    done: bool = False

    def __post_init__(self):
        # With no warm-up the measurement window opens immediately.
        if self.warmup_ops <= 0:
            self.measuring = True

    def note_completion(self, stats: RunStats, now: float) -> None:
        """Count one finished operation; manage the measurement window."""
        self.completed += 1
        if not self.measuring and self.completed >= self.warmup_ops:
            self.measuring = True
            stats.started_at = now
        if (self.measuring
                and self.completed >= self.warmup_ops + self.measured_ops
                and not self.done):
            self.done = True
            stats.finished_at = now


class ClientThread:
    """One synchronous workload-generator thread."""

    def __init__(self, session: StoreSession, workload: Workload,
                 chooser, sequence: KeySequence, stats: RunStats,
                 control: RunControl, rng: random.Random,
                 schema: RecordSchema, throttle: Throttle | None = None,
                 retry: RetryPolicy | None = None, tracer=None,
                 deadline_s: Optional[float] = None, budget=None,
                 breaker=None, obs=None, audit=None):
        self.session = session
        self.workload = workload
        self.chooser = chooser
        self.sequence = sequence
        self.stats = stats
        self.control = control
        self.rng = rng
        self.schema = schema
        self.throttle = throttle
        self.retry = retry if retry is not None else session.store.retry_policy()
        self.tracer = tracer
        #: Per-operation deadline (seconds) stamped into the kernel slot.
        self.deadline_s = deadline_s
        #: Shared :class:`~repro.overload.budget.RetryBudget`, or ``None``.
        self.budget = budget
        #: Shared :class:`~repro.overload.budget.CircuitBreaker`, or ``None``.
        self.breaker = breaker
        #: Shared :class:`~repro.obs.layer.ObsLayer`, or ``None``.
        self.obs = obs
        #: Shared :class:`~repro.audit.history.HistoryRecorder`, or ``None``.
        self.audit = audit
        self._op_table = workload.op_table()

    def _draw_op(self) -> OpType:
        roll = self.rng.random()
        for op, threshold in self._op_table:
            if roll <= threshold:
                return op
        return self._op_table[-1][0]

    def run(self):
        """Process body: issue operations until the run is complete."""
        sim = self.session.store.sim
        while not self.control.done:
            if self.throttle is not None:
                yield from self.throttle.acquire()
                if self.control.done:
                    break
            op = self._draw_op()
            # Draw the operation's arguments once, before any attempt:
            # a retry re-issues the *same* operation, it does not burn a
            # fresh key from the generator streams.
            fields = None
            scan_length = 0
            if op is OpType.INSERT:
                record = generate_record(self.sequence.take(), self.schema)
                key, fields = record.key, record.fields
            elif op is OpType.UPDATE:
                record = generate_record(
                    self.chooser.next_record_number(), self.schema)
                key, fields = record.key, record.fields
            else:  # READ / SCAN / DELETE
                key = generate_record(
                    self.chooser.next_record_number(), self.schema
                ).key
                if op is OpType.SCAN:
                    scan_length = self.workload.scan_length
            # Workload-loop and driver dispatch work happens before YCSB
            # starts the operation timer.
            yield from self.session.store.dispatch_cpu(self.session.client)
            started = sim.now
            # Sample traces only inside the measurement window, so the
            # trace set matches the latencies the histograms report.
            trace = None
            if (self.tracer is not None and self.control.measuring
                    and not self.control.done
                    and self.tracer.should_sample()):
                trace = self.tracer.begin(op.value, key, self.session.index)
            deadline = None
            if self.deadline_s is not None:
                deadline = started + self.deadline_s
                sim.deadline = deadline
            try:
                error, kind = yield from attempt_op(
                    self.session, op, key, fields, scan_length, self.retry,
                    deadline=deadline, budget=self.budget,
                    breaker=self.breaker,
                )
            finally:
                if deadline is not None:
                    sim.deadline = None
            latency = sim.now - started
            if trace is not None:
                self.tracer.complete(trace, error, kind)
            self.stats.note_op(sim.now, error)
            if self.control.measuring and not self.control.done:
                self.stats.record(op, latency, error, kind)
                if trace is not None:
                    self.stats.note_trace(trace)
                if self.obs is not None:
                    self.obs.note_op(op.value, latency, error, kind, trace)
            if self.audit is not None:
                # Purely observational: no yields, no simulated cost —
                # an audited run is op-for-op identical to a bare one.
                self.audit.note_client_op(
                    session=self.session.index, op=op.value, key=key,
                    t_invoke=started, t_ack=sim.now, ok=error is None,
                    error=kind if error is not None else None,
                )
            self.control.note_completion(self.stats, sim.now)
