"""Workload definitions (Table 1 of the paper).

A workload is a distribution over CRUD-S operations plus scan parameters.
The paper's five workloads::

    Workload   % Read   % Scans   % Inserts
    R            95        0          5
    RW           50        0         50
    W             1        0         99
    RS           47       47          6
    RSW          25       25         50

All access patterns are uniformly distributed; scans fetch 50 records and
reads fetch all fields (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stores.base import OpType

__all__ = [
    "Workload",
    "WORKLOAD_R",
    "WORKLOAD_RW",
    "WORKLOAD_W",
    "WORKLOAD_RS",
    "WORKLOAD_RSW",
    "WORKLOAD_WS",
    "WORKLOADS",
]


@dataclass(frozen=True)
class Workload:
    """An operation mix over the benchmark key space."""

    name: str
    read_proportion: float = 0.0
    insert_proportion: float = 0.0
    scan_proportion: float = 0.0
    update_proportion: float = 0.0
    delete_proportion: float = 0.0
    #: Records fetched per scan (Section 3: "a scan-length of 50").
    scan_length: int = 50
    #: Key access distribution: "uniform", "zipfian" or "latest".
    distribution: str = "uniform"

    def __post_init__(self):
        total = (self.read_proportion + self.insert_proportion
                 + self.scan_proportion + self.update_proportion
                 + self.delete_proportion)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"workload {self.name!r} proportions sum to {total}, not 1"
            )

    @property
    def has_scans(self) -> bool:
        """Whether the mix contains scan operations."""
        return self.scan_proportion > 0

    @property
    def write_fraction(self) -> float:
        """Fraction of mutating operations."""
        return (self.insert_proportion + self.update_proportion
                + self.delete_proportion)

    def op_table(self) -> list[tuple[OpType, float]]:
        """Cumulative (op, threshold) table for inverse-CDF sampling."""
        table: list[tuple[OpType, float]] = []
        acc = 0.0
        for op, p in (
            (OpType.READ, self.read_proportion),
            (OpType.SCAN, self.scan_proportion),
            (OpType.INSERT, self.insert_proportion),
            (OpType.UPDATE, self.update_proportion),
            (OpType.DELETE, self.delete_proportion),
        ):
            if p > 0:
                acc += p
                table.append((op, acc))
        if table:
            # guard against floating-point shortfall at the top end
            table[-1] = (table[-1][0], 1.0)
        return table


#: Table 1, row "R": read-intensive web-style mix.
WORKLOAD_R = Workload("R", read_proportion=0.95, insert_proportion=0.05)

#: Table 1, row "RW": an equal read/write mix.
WORKLOAD_RW = Workload("RW", read_proportion=0.50, insert_proportion=0.50)

#: Table 1, row "W": the APM ingest mix (99% inserts).
WORKLOAD_W = Workload("W", read_proportion=0.01, insert_proportion=0.99)

#: Table 1, row "RS": read-intensive with half the reads as scans.
WORKLOAD_RS = Workload("RS", read_proportion=0.47, scan_proportion=0.47,
                       insert_proportion=0.06)

#: Table 1, row "RSW": write-heavy with scans.
WORKLOAD_RSW = Workload("RSW", read_proportion=0.25, scan_proportion=0.25,
                        insert_proportion=0.50)

#: The write-intensive scan workload the paper tested but omitted
#: "due to space constraints" (Section 3).
WORKLOAD_WS = Workload("WS", read_proportion=0.01, scan_proportion=0.09,
                       insert_proportion=0.90)

#: The paper's five presented workloads, in Table 1 order.
WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in (WORKLOAD_R, WORKLOAD_RW, WORKLOAD_W, WORKLOAD_RS, WORKLOAD_RSW)
}
