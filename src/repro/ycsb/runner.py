"""End-to-end benchmark execution.

``run_benchmark`` reproduces the paper's methodology (Section 3) on the
simulated substrate:

1. provision a fresh cluster (Cluster M or D profile) at the requested
   node count — every run starts from a clean install, as the paper's
   scripts did;
2. load the data set (10 M records per node in the paper; scaled down by
   default — the hardware profile's RAM scales by the same factor so the
   memory-bound/disk-bound regime is preserved);
3. open the configured number of client connections (128 per server node
   on Cluster M, fewer where a store's client library forced it);
4. run the workload closed-loop at maximum throughput (or bounded by a
   target rate for the Figure 15/16 experiments) and report throughput
   plus per-operation latencies over the measurement window.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Optional

from repro.faults.availability import AvailabilityTimeline
from repro.faults.chaos import ChaosController
from repro.faults.schedule import FaultSchedule
from repro.overload.budget import CircuitBreaker, RetryBudget
from repro.overload.policy import OverloadPolicy
from repro.sim.cluster import CLUSTER_M, Cluster, ClusterSpec, NodeSpec
from repro.sim.disk import DiskSpec
from repro.sim.network import NetworkSpec
from repro.storage.record import APM_SCHEMA, RecordSchema
from repro.stores.base import OpType, RetryPolicy, Store
from repro.stores.registry import store_class
from repro.trace import Tracer
from repro.ycsb.client import ClientThread, RunControl
from repro.ycsb.generator import KeySequence, generate_records, make_chooser
from repro.ycsb.stats import LatencyHistogram, RunStats
from repro.ycsb.throttle import Throttle
from repro.ycsb.workload import Workload

__all__ = ["BenchmarkConfig", "BenchmarkResult", "UnportableConfigError",
           "run_benchmark", "scaled_spec"]

#: Records per node the paper loads on Cluster M (Section 3).
PAPER_RECORDS_PER_NODE = 10_000_000

#: Schema version of :meth:`BenchmarkConfig.to_dict` payloads.
CONFIG_FORMAT = 1


class UnportableConfigError(ValueError):
    """A configuration that cannot be rebuilt from its dict form.

    Raised by :meth:`BenchmarkConfig.from_dict` when the payload carries
    opaque (fingerprint-only) entries — a fault schedule, a retry policy,
    or non-JSON ``store_kwargs`` values.  Such configs still *hash* and
    *key* deterministically; they just cannot cross a process boundary.
    """


def _opaque(value: Any) -> dict:
    """Reduce a non-JSON value to a stable fingerprint marker."""
    from repro.analysis.provenance import config_fingerprint

    return {"__opaque__": config_fingerprint(value)}


def _portable_value(value: Any) -> Any:
    """A JSON-ready projection of ``value``; opaque where it must be."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _portable_value(v) for k, v in sorted(
            value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_portable_value(v) for v in value]
    return _opaque(value)


def _contains_opaque(value: Any) -> bool:
    if isinstance(value, dict):
        if "__opaque__" in value:
            return True
        return any(_contains_opaque(v) for v in value.values())
    if isinstance(value, list):
        return any(_contains_opaque(v) for v in value)
    return False


def scaled_spec(spec: ClusterSpec, records_per_node: int,
                paper_records_per_node: int) -> ClusterSpec:
    """Shrink node RAM in proportion to the scaled-down data set.

    The paper's regimes (Cluster M: data fits in memory; Cluster D: it
    does not) depend on the ratio of data to RAM.  Scaling both together
    preserves the regime while keeping the simulation tractable.
    """
    scale = records_per_node / paper_records_per_node
    if scale >= 1.0:
        return spec
    node = replace(spec.node,
                   ram_bytes=max(1 << 20, int(spec.node.ram_bytes * scale)))
    return replace(spec, node=node)


@dataclass(frozen=True)
class BenchmarkConfig:
    """Everything that defines one benchmark data point."""

    store: str
    workload: Workload
    n_nodes: int
    cluster_spec: ClusterSpec = CLUSTER_M
    records_per_node: int = 100_000
    paper_records_per_node: int = PAPER_RECORDS_PER_NODE
    measured_ops: int = 6000
    warmup_ops: int = 800
    seed: int = 42
    #: Bound the offered load (ops/s); ``None`` = maximum throughput.
    target_throughput: Optional[float] = None
    store_kwargs: dict = field(default_factory=dict)
    #: Chaos plan applied during the run (``None`` = fault-free).
    fault_schedule: Optional[FaultSchedule] = None
    #: Run for a fixed simulated time instead of a fixed operation count
    #: — the natural framing for chaos experiments, where the schedule is
    #: anchored to absolute times.
    duration_s: Optional[float] = None
    #: Bucket width of the availability timeline.
    availability_window_s: float = 0.25
    #: Override the store's default client retry policy.
    retry: Optional[RetryPolicy] = None
    #: Overload-resilience policy: bounded queues, deadlines, admission
    #: control and retry budgets (``None`` = the unprotected stack).
    overload: Optional[OverloadPolicy] = None
    #: Sample every Nth measured operation into a span trace
    #: (``None`` = tracing off).  Sampling is deterministic, so a fixed
    #: seed yields identical traces across runs.
    trace_sample_every: Optional[int] = None
    #: Cap on retained traces (oldest kept; later samples only counted).
    trace_max_traces: int = 2000
    #: Sampling interval of the metrics timeseries, in simulated seconds
    #: (``None`` = metrics off; the zero-cost fast path).
    metrics_interval_s: Optional[float] = None
    #: Sub-windows the sustained-throughput check splits the window into.
    sustained_subwindows: int = 4
    #: Max (peak - floor) / peak degradation still counted as sustained.
    sustained_tolerance: float = 0.25

    def __post_init__(self):
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.records_per_node < 1:
            raise ValueError("records_per_node must be >= 1")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.availability_window_s <= 0:
            raise ValueError("availability_window_s must be positive")
        if (self.trace_sample_every is not None
                and self.trace_sample_every < 1):
            raise ValueError("trace_sample_every must be >= 1")
        if self.metrics_interval_s is not None and self.metrics_interval_s <= 0:
            raise ValueError("metrics_interval_s must be positive")
        if self.sustained_subwindows < 2:
            raise ValueError("sustained_subwindows must be >= 2")
        if not 0.0 <= self.sustained_tolerance <= 1.0:
            raise ValueError("sustained_tolerance must be in [0, 1]")

    # -- serialisation and content addressing -------------------------------
    #
    # ``to_dict`` is the single source of truth for a config's identity:
    # the cache key (:meth:`content_key`), the content hash
    # (:meth:`content_hash`, used by the on-disk result store) and the
    # wire form (:meth:`from_dict`) are all derived from it, so they can
    # never silently diverge.  ``tests/orchestrator/test_serialize.py``
    # additionally asserts every dataclass field appears in the payload.

    def to_dict(self) -> dict:
        """A stable, JSON-ready projection of this configuration.

        Always succeeds: values that have no JSON form (a fault
        schedule, a retry policy, exotic ``store_kwargs``) are reduced
        to ``{"__opaque__": <fingerprint>}`` markers so the projection
        still identifies the config uniquely; such payloads are rejected
        by :meth:`from_dict` (see :meth:`is_portable`).
        """
        workload = self.workload
        return {
            "format": CONFIG_FORMAT,
            "store": self.store,
            "workload": {
                "name": workload.name,
                "read_proportion": workload.read_proportion,
                "insert_proportion": workload.insert_proportion,
                "scan_proportion": workload.scan_proportion,
                "update_proportion": workload.update_proportion,
                "delete_proportion": workload.delete_proportion,
                "scan_length": workload.scan_length,
                "distribution": workload.distribution,
            },
            "n_nodes": self.n_nodes,
            "cluster_spec": asdict(self.cluster_spec),
            "records_per_node": self.records_per_node,
            "paper_records_per_node": self.paper_records_per_node,
            "measured_ops": self.measured_ops,
            "warmup_ops": self.warmup_ops,
            "seed": self.seed,
            "target_throughput": self.target_throughput,
            "store_kwargs": _portable_value(self.store_kwargs),
            "fault_schedule": (None if self.fault_schedule is None
                               else _opaque(self.fault_schedule)),
            "duration_s": self.duration_s,
            "availability_window_s": self.availability_window_s,
            "retry": None if self.retry is None else _opaque(self.retry),
            "overload": (None if self.overload is None
                         else self.overload.to_dict()),
            "trace_sample_every": self.trace_sample_every,
            "trace_max_traces": self.trace_max_traces,
            "metrics_interval_s": self.metrics_interval_s,
            "sustained_subwindows": self.sustained_subwindows,
            "sustained_tolerance": self.sustained_tolerance,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchmarkConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Raises :class:`UnportableConfigError` for payloads carrying
        opaque markers, and :class:`ValueError` for unknown formats.
        """
        if payload.get("format") != CONFIG_FORMAT:
            raise ValueError(
                f"unsupported config format {payload.get('format')!r} "
                f"(expected {CONFIG_FORMAT})")
        if _contains_opaque(payload):
            raise UnportableConfigError(
                "config payload carries opaque (non-serialisable) values; "
                "fault schedules and retry policies cannot cross a "
                "process boundary")
        spec_d = payload["cluster_spec"]
        node_d = dict(spec_d["node"])
        node = NodeSpec(**{**node_d, "disk": DiskSpec(**node_d["disk"])})
        spec = ClusterSpec(
            name=spec_d["name"],
            node=node,
            max_nodes=spec_d["max_nodes"],
            network=NetworkSpec(**spec_d["network"]),
            connections_per_node=spec_d["connections_per_node"],
            servers_per_client=spec_d["servers_per_client"],
        )
        return cls(
            store=payload["store"],
            workload=Workload(**payload["workload"]),
            n_nodes=payload["n_nodes"],
            cluster_spec=spec,
            records_per_node=payload["records_per_node"],
            paper_records_per_node=payload["paper_records_per_node"],
            measured_ops=payload["measured_ops"],
            warmup_ops=payload["warmup_ops"],
            seed=payload["seed"],
            target_throughput=payload["target_throughput"],
            store_kwargs=dict(payload["store_kwargs"]),
            duration_s=payload["duration_s"],
            availability_window_s=payload["availability_window_s"],
            overload=(None if payload.get("overload") is None
                      else OverloadPolicy.from_dict(payload["overload"])),
            trace_sample_every=payload["trace_sample_every"],
            trace_max_traces=payload["trace_max_traces"],
            metrics_interval_s=payload["metrics_interval_s"],
            sustained_subwindows=payload["sustained_subwindows"],
            sustained_tolerance=payload["sustained_tolerance"],
        )

    @property
    def is_portable(self) -> bool:
        """Whether :meth:`from_dict` can rebuild this config."""
        return not _contains_opaque(self.to_dict())

    def content_key(self) -> str:
        """Canonical identity string (the cache key) of this config."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def content_hash(self) -> str:
        """sha256 hex digest of :meth:`content_key` (store address)."""
        return hashlib.sha256(self.content_key().encode()).hexdigest()

    def label(self) -> str:
        """A short human-readable point label for logs and progress."""
        parts = [f"{self.store}/{self.workload.name}/n{self.n_nodes}",
                 f"cluster={self.cluster_spec.name}"]
        if self.target_throughput is not None:
            parts.append(f"target={self.target_throughput:.0f}")
        return " ".join(parts)


@dataclass
class BenchmarkResult:
    """One benchmark data point: configuration plus measurements."""

    config: BenchmarkConfig
    stats: RunStats
    connections: int
    store_errors: int
    disk_bytes_per_server: list[int]
    #: ``(time, description)`` log of every fault the controller applied.
    fault_log: list = field(default_factory=list)
    #: Sampled span traces (empty unless ``trace_sample_every`` was set).
    traces: list = field(default_factory=list)
    #: Telemetry bundle (``None`` unless ``metrics_interval_s`` was set).
    metrics: Optional["MetricsReport"] = None
    #: Observability layer (``None`` unless ``run_benchmark`` got an
    #: ``obs`` policy): SLO alerts, exemplars, tail sampling, flight
    #: recorder.  Deliberately *not* part of :class:`BenchmarkConfig` —
    #: watching a run must not change its identity (content key).
    obs: Optional[object] = None

    @property
    def breakdown(self):
        """Per-component latency attribution (``None`` without tracing)."""
        return self.stats.breakdown

    @property
    def timeline(self) -> Optional[AvailabilityTimeline]:
        """Windowed throughput/error series (chaos and timed runs only)."""
        return self.stats.timeline

    @property
    def throughput_ops(self) -> float:
        """Operations per (simulated) second over the measurement window."""
        return self.stats.throughput

    def _histogram(self, op: OpType) -> LatencyHistogram:
        return self.stats.histogram(op)

    @property
    def read_latency(self) -> LatencyHistogram:
        """Latency histogram of read operations."""
        return self._histogram(OpType.READ)

    @property
    def write_latency(self) -> LatencyHistogram:
        """Latency histogram of insert (write) operations."""
        merged = LatencyHistogram()
        for op in (OpType.INSERT, OpType.UPDATE):
            if op in self.stats.histograms:
                merged.merge(self.stats.histograms[op])
        return merged

    @property
    def scan_latency(self) -> LatencyHistogram:
        """Latency histogram of scan operations."""
        return self._histogram(OpType.SCAN)

    def row(self) -> dict:
        """A flat record for tabular reporting."""
        return {
            "store": self.config.store,
            "workload": self.config.workload.name,
            "nodes": self.config.n_nodes,
            "cluster": self.config.cluster_spec.name,
            "throughput_ops": round(self.throughput_ops, 1),
            "read_ms": round(self.read_latency.mean * 1000, 3),
            "write_ms": round(self.write_latency.mean * 1000, 3),
            "scan_ms": round(self.scan_latency.mean * 1000, 3),
            "errors": self.stats.errors + self.store_errors,
            "error_pct": round(100.0 * self.stats.error_rate, 2),
        }


def _build_store(config: BenchmarkConfig, cluster: Cluster,
                 schema: RecordSchema) -> Store:
    cls = store_class(config.store)
    return cls(cluster, schema=schema, **config.store_kwargs)


def run_benchmark(store: str, workload: Workload, n_nodes: int,
                  config: Optional[BenchmarkConfig] = None,
                  obs=None, audit=None, **overrides) -> BenchmarkResult:
    """Run one benchmark data point and return its measurements.

    ``store`` is a registry name ("cassandra", "hbase", "voldemort",
    "redis", "voltdb", "mysql"); extra keyword arguments override
    :class:`BenchmarkConfig` fields.

    ``obs`` optionally attaches an :class:`~repro.obs.policy.ObsPolicy`
    observability overlay (SLO burn-rate alerting, exemplar-linked tail
    sampling, flight recorder).  It is a separate parameter, not a
    config field: observing a run must not change its content key or
    provenance fingerprint.

    ``audit`` optionally attaches a
    :class:`~repro.audit.history.HistoryRecorder` that logs every
    client operation's invocation/ack for the audit checkers.  Like
    ``obs`` it lives outside the config: auditing a run must leave it
    op-for-op identical to a bare one.
    """
    if config is None:
        config = BenchmarkConfig(store=store, workload=workload,
                                 n_nodes=n_nodes, **overrides)
    schema = APM_SCHEMA

    cls = store_class(config.store)
    if workload.has_scans and not cls.supports_scans:
        raise ValueError(
            f"{config.store} does not support scans (workload "
            f"{workload.name}); the paper omits it from scan workloads"
        )

    spec = scaled_spec(config.cluster_spec, config.records_per_node,
                       config.paper_records_per_node)
    n_clients = cls.clients_for(config.n_nodes, spec.servers_per_client)
    cluster = Cluster(spec, config.n_nodes, n_clients=n_clients)
    deployed = _build_store(config, cluster, schema)
    if config.overload is not None:
        deployed.configure_overload(config.overload)

    total_records = config.records_per_node * config.n_nodes
    deployed.load(generate_records(total_records, schema))
    deployed.warm_caches()

    sequence = KeySequence(total_records)
    stats = RunStats()
    if (config.fault_schedule is not None or config.duration_s is not None
            or config.metrics_interval_s is not None):
        window_s = config.availability_window_s
        if config.metrics_interval_s is not None:
            # The sustained check splits the measurement window into
            # sub-windows; the op timeline must resolve finer than those.
            window_s = min(window_s, config.metrics_interval_s)
        stats.timeline = AvailabilityTimeline(window_s)
    n_connections = deployed.connections(spec.connections_per_node)
    if config.duration_s is not None:
        # Time-bounded run: the clock, not an op count, ends measurement.
        warmup_ops = config.warmup_ops
        measured_ops = 1 << 62
    else:
        # The measurement window must span many "rounds" of the closed
        # loop (and, for buffering clients, several buffer cycles), or
        # boundary effects dominate the throughput estimate.
        min_warmup, min_measured = deployed.min_window(n_connections)
        warmup_ops = max(config.warmup_ops, min_warmup)
        measured_ops = max(config.measured_ops, min_measured)
    control = RunControl(warmup_ops, measured_ops)
    throttle = (Throttle(cluster.sim, config.target_throughput)
                if config.target_throughput else None)
    chaos = None
    if config.fault_schedule is not None and len(config.fault_schedule):
        chaos = ChaosController(cluster, config.fault_schedule)
        chaos.subscribe(deployed)
        chaos.start()
    deadline_s = budget = breaker = None
    if config.overload is not None:
        policy = config.overload
        deadline_s = policy.deadline_s
        if policy.retry_budget_per_s is not None:
            budget = RetryBudget(policy.retry_budget_per_s,
                                 policy.retry_budget_burst)
        if policy.circuit_breaker:
            breaker = CircuitBreaker()
            if chaos is not None:
                chaos.subscribe(breaker)
    tracer = None
    if obs is None and config.trace_sample_every is not None:
        tracer = Tracer(cluster.sim,
                        sample_every=config.trace_sample_every,
                        max_traces=config.trace_max_traces)
    registry = sampler = None
    if config.metrics_interval_s is not None:
        from repro.metrics import (MetricsRegistry, MetricsSampler,
                                   instrument_cluster)
        registry = MetricsRegistry(cluster.sim)
        instrument_cluster(registry, cluster)
        deployed.attach_metrics(registry)
        sampler = MetricsSampler(registry, config.metrics_interval_s)
        sampler.start()
    obs_layer = None
    if obs is not None:
        from repro.obs import ObsLayer
        # Tail sampling replaces head sampling: the keep/drop decision
        # moves to span-tree completion, with ``trace_sample_every``
        # (when set) gating which operations are candidates at all.
        obs_layer = ObsLayer(cluster.sim, obs, registry=registry,
                             candidate_every=config.trace_sample_every)
        tracer = obs_layer.tracer
        if chaos is not None:
            obs_layer.attach_chaos(chaos)
        obs_layer.start()
    from repro.sim.rng import RngRegistry
    rngs = RngRegistry(config.seed)
    threads = []
    for i in range(n_connections):
        client_node = cluster.client_for_connection(i)
        session = deployed.session(client_node, i)
        rng = rngs.stream(f"thread-{i}")
        chooser = make_chooser(workload.distribution, total_records,
                               sequence, rng)
        threads.append(ClientThread(
            session, workload, chooser, sequence, stats, control, rng,
            schema, throttle, retry=config.retry, tracer=tracer,
            deadline_s=deadline_s, budget=budget, breaker=breaker,
            obs=obs_layer, audit=audit,
        ))
    processes = [cluster.sim.process(t.run(), name=f"client-{i}")
                 for i, t in enumerate(threads)]
    if config.duration_s is not None:
        cluster.sim.run(until=config.duration_s)
        control.done = True
        stats.finished_at = cluster.sim.now
        # Let every thread finish its in-flight operation (not measured:
        # ``done`` is already set) so no process is left mid-IO.
        cluster.sim.run(until=cluster.sim.all_of(processes))
    else:
        cluster.sim.run(until=cluster.sim.all_of(processes))
        if stats.finished_at == 0.0:
            stats.finished_at = cluster.sim.now

    metrics = None
    if sampler is not None:
        from repro.metrics import (MetricsReport, analyze_saturation,
                                   verify_sustained)
        sampler.close()
        t0, t1 = stats.started_at, stats.finished_at
        saturation = sustained = None
        if t1 > t0:
            saturation = analyze_saturation(sampler.series, cluster, t0, t1,
                                            store_name=deployed.name)
            if stats.timeline is not None:
                sustained = verify_sustained(
                    stats.timeline, t0, t1,
                    subwindows=config.sustained_subwindows,
                    tolerance=config.sustained_tolerance)
        metrics = MetricsReport(registry=registry, series=sampler.series,
                                saturation=saturation, sustained=sustained,
                                exemplars=(obs_layer.exemplars
                                           if obs_layer is not None
                                           else None))
    if obs_layer is not None:
        obs_layer.close()

    return BenchmarkResult(
        config=config,
        stats=stats,
        connections=n_connections,
        store_errors=deployed.errors,
        disk_bytes_per_server=deployed.disk_bytes_per_server(),
        fault_log=list(chaos.log) if chaos is not None else [],
        traces=list(tracer.traces) if tracer is not None else [],
        metrics=metrics,
        obs=obs_layer,
    )
