"""A YCSB-style benchmark framework (Section 3 of the paper).

The framework mirrors the Yahoo! Cloud Serving Benchmark abstractions the
paper built on:

* :mod:`repro.ycsb.workload` — operation mixes; Table 1's five workloads
  (R, RW, W, RS, RSW) are predefined.
* :mod:`repro.ycsb.generator` — key choosers (uniform, zipfian, latest)
  and deterministic record/value generation (25-byte keys, five 10-byte
  fields).
* :mod:`repro.ycsb.stats` — latency histograms and run summaries.
* :mod:`repro.ycsb.throttle` — target-throughput limiting for the
  bounded-load experiments (Figures 15/16).
* :mod:`repro.ycsb.client` — closed-loop client threads.
* :mod:`repro.ycsb.runner` — end-to-end benchmark execution on a
  simulated cluster: provision, load, run, measure.
"""

from repro.ycsb.workload import (
    WORKLOAD_R,
    WORKLOAD_RS,
    WORKLOAD_RSW,
    WORKLOAD_RW,
    WORKLOAD_W,
    WORKLOADS,
    Workload,
)
from repro.ycsb.runner import BenchmarkConfig, BenchmarkResult, run_benchmark

__all__ = [
    "BenchmarkConfig",
    "BenchmarkResult",
    "WORKLOADS",
    "WORKLOAD_R",
    "WORKLOAD_RS",
    "WORKLOAD_RSW",
    "WORKLOAD_RW",
    "WORKLOAD_W",
    "Workload",
    "run_benchmark",
]
