"""Key choosers and record generation.

Implements YCSB's generator stack: a uniform chooser (the paper's
configuration), the classic zipfian generator (Gray et al.'s algorithm,
as in YCSB), and a "latest" chooser that skews towards recent inserts.
Records follow the paper's schema: 25-byte keys, five 10-byte fields.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.keyspace import format_key
from repro.storage.record import APM_SCHEMA, Record, RecordSchema

__all__ = [
    "UniformChooser",
    "ZipfianChooser",
    "LatestChooser",
    "KeySequence",
    "make_chooser",
    "generate_field_value",
    "generate_record",
    "generate_records",
]


_VALUE_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789"


def generate_field_value(record_number: int, field_index: int,
                         length: int) -> str:
    """Deterministic field content for record/field (reproducible loads)."""
    seed = record_number * 31 + field_index * 7
    chars = []
    for i in range(length):
        seed = (seed * 6364136223846793005 + 1442695040888963407) % 2**64
        chars.append(_VALUE_ALPHABET[seed % len(_VALUE_ALPHABET)])
    return "".join(chars)


def generate_record(record_number: int,
                    schema: RecordSchema = APM_SCHEMA) -> Record:
    """The benchmark record for ``record_number``."""
    fields = {
        name: generate_field_value(record_number, i, schema.field_length)
        for i, name in enumerate(schema.field_names)
    }
    return Record(format_key(record_number), fields)


def generate_records(count: int,
                     schema: RecordSchema = APM_SCHEMA) -> Iterator[Record]:
    """The first ``count`` benchmark records."""
    for i in range(count):
        yield generate_record(i, schema)


class KeySequence:
    """A shared counter handing out fresh record numbers for inserts.

    APM data is append-only (Section 2): every insert creates a new
    record.  All client threads share one sequence, like YCSB's
    ``CounterGenerator``.
    """

    def __init__(self, start: int):
        self._next = start

    @property
    def next_value(self) -> int:
        """The record number the next insert will consume."""
        return self._next

    def take(self) -> int:
        """Claim the next record number."""
        value = self._next
        self._next += 1
        return value


class UniformChooser:
    """Uniform choice over the loaded record numbers (the paper's mode)."""

    def __init__(self, record_count: int, rng: random.Random):
        if record_count < 1:
            raise ValueError("record_count must be >= 1")
        self.record_count = record_count
        self._rng = rng

    def next_record_number(self) -> int:
        """A uniformly random loaded record number."""
        return self._rng.randrange(self.record_count)


class ZipfianChooser:
    """YCSB's ZipfianGenerator (Gray et al.): skewed towards low items.

    Included for workload extensions; the paper's experiments are uniform.
    The popular items are scattered across the key space by the key
    formatter, like YCSB's ``ScrambledZipfianGenerator``.
    """

    def __init__(self, record_count: int, rng: random.Random,
                 theta: float = 0.99):
        if record_count < 1:
            raise ValueError("record_count must be >= 1")
        self.record_count = record_count
        self.theta = theta
        self._rng = rng
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(record_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._eta = ((1 - (2.0 / record_count) ** (1 - theta))
                     / (1 - self._zeta2 / self._zetan))

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next_record_number(self) -> int:
        """A zipf-distributed record number in [0, record_count)."""
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.record_count
                   * (self._eta * u - self._eta + 1) ** self._alpha)


class LatestChooser:
    """Skews towards recently inserted records (YCSB "latest")."""

    def __init__(self, sequence: KeySequence, rng: random.Random,
                 theta: float = 0.99):
        self._sequence = sequence
        self._rng = rng
        self._theta = theta
        self._zipf: ZipfianChooser | None = None
        self._zipf_horizon = 0

    def next_record_number(self) -> int:
        """A record number, most likely near the head of the sequence."""
        horizon = max(1, self._sequence.next_value)
        # Rebuilding the zipfian table is O(n); refresh it only when the
        # insert horizon has grown materially (like YCSB's incremental
        # zeta update).
        if self._zipf is None or horizon > self._zipf_horizon * 1.25:
            self._zipf = ZipfianChooser(horizon, self._rng, self._theta)
            self._zipf_horizon = horizon
        offset = self._zipf.next_record_number() % horizon
        return max(0, horizon - 1 - offset)


def make_chooser(distribution: str, record_count: int,
                 sequence: KeySequence, rng: random.Random):
    """Build the key chooser named by ``distribution``."""
    if distribution == "uniform":
        return UniformChooser(record_count, rng)
    if distribution == "zipfian":
        return ZipfianChooser(record_count, rng)
    if distribution == "latest":
        return LatestChooser(sequence, rng)
    raise ValueError(f"unknown distribution {distribution!r}")
