"""The paper's example monitoring queries (Section 2).

On-line queries (sub-second expectations, sliding windows):

* "What was the maximum number of connections on host X within the last
  10 minutes?"
* "What was the average CPU utilization of Web servers of type Y within
  the last 15 minutes?"

Archive queries (minutes-scale expectations):

* "What was the average total response time for Web requests served by
  replications of servlet X in December 2011?"
* "What was the maximum average response time of calls from application
  Y to database Z within the last month?"

All four are implemented over a store session's ``scan`` primitive: keys
embed metric path + padded timestamp, so a window is one range scan per
metric.  Stores without scans (Voldemort) fall back to per-interval
point reads, exactly the workaround an operator of such a store would
deploy.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.metrics import Measurement, MetricId, measurement_key
from repro.stores.base import OpError, StoreSession
from repro.storage.record import Record

__all__ = ["MonitoringQueries"]


class MonitoringQueries:
    """Window aggregates over stored measurements, via one store session."""

    def __init__(self, session: StoreSession, interval_s: int = 10):
        self.session = session
        self.interval_s = interval_s

    # -- primitives --------------------------------------------------------

    def _window_measurements(self, metric: MetricId, now: int,
                             window_s: int):
        """Process: fetch a metric's measurements in ``[now-window_s, now]``."""
        start_ts = now - window_s
        expected = window_s // self.interval_s + 1
        start_key = measurement_key(metric, start_ts)
        end_key = measurement_key(metric, now)
        try:
            rows = yield from self.session.scan(start_key, expected)
            measurements = [
                Measurement.from_record(metric, Record(key, fields))
                for key, fields in rows
                if key.startswith(metric.path) and key <= end_key
            ]
        except (OpError, NotImplementedError):
            # No scan support: issue one point read per interval slot.
            measurements = []
            for i in range(expected):
                ts = start_ts + i * self.interval_s
                fields = yield from self.session.read(
                    measurement_key(metric, ts))
                if fields is not None:
                    record = Record(measurement_key(metric, ts), fields)
                    measurements.append(
                        Measurement.from_record(metric, record))
        return measurements

    # -- on -------------------------------------------------------------------

    def max_over_window(self, metric: MetricId, now: int, window_s: int):
        """Process: max of a metric over a sliding window (query 1)."""
        rows = yield from self._window_measurements(metric, now, window_s)
        return max((m.maximum for m in rows), default=None)

    def avg_over_window(self, metrics: Iterable[MetricId], now: int,
                        window_s: int):
        """Process: average of several hosts' metrics over a window
        (query 2: the same metric measured on different machines)."""
        total = 0.0
        count = 0
        for metric in metrics:
            rows = yield from self._window_measurements(metric, now,
                                                        window_s)
            total += sum(m.value for m in rows)
            count += len(rows)
        return total / count if count else None

    # -- archive queries ------------------------------------------------------

    def avg_over_period(self, metrics: Iterable[MetricId], start: int,
                        end: int):
        """Process: average of metrics over an archive period (query 3)."""
        result = yield from self.avg_over_window(
            metrics, now=end, window_s=end - start)
        return result

    def max_of_averages(self, metrics: Iterable[MetricId], start: int,
                        end: int):
        """Process: maximum of per-interval average values (query 4)."""
        best: Optional[float] = None
        for metric in metrics:
            rows = yield from self._window_measurements(
                metric, now=end, window_s=end - start)
            for m in rows:
                if best is None or m.value > best:
                    best = m.value
        return best
