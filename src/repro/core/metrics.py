"""Metric identities and measurements (Figure 2 of the paper).

An APM measurement looks like::

    Metric Name                                   Value Min Max Timestamp  Duration
    HostA/AgentX/ServletB/AverageResponseTime     4     1   6   1332988833 15

Measurements are append-only: agents aggregate events over their
reporting interval and append one record per metric per interval
(Section 3).  :meth:`Measurement.to_record` maps a measurement onto the
benchmark's generic record layout so it can be stored in any of the six
stores; keys embed the metric path and a zero-padded timestamp so range
scans retrieve contiguous time windows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.storage.record import Record

__all__ = ["MetricId", "Measurement", "MonitoringLevel"]


class MonitoringLevel(enum.Enum):
    """APM data-collection levels (Section 3) and their rate multipliers."""

    BASIC = 1.0
    TRANSACTION_TRACE = 3.0
    INCIDENT_TRIAGE = 10.0


@dataclass(frozen=True)
class MetricId:
    """A fully qualified metric path: host/agent/component/metric."""

    host: str
    agent: str
    component: str
    metric: str

    @property
    def path(self) -> str:
        """The slash-joined metric name as agents report it."""
        return f"{self.host}/{self.agent}/{self.component}/{self.metric}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.path


#: Width of the zero-padded timestamp suffix in measurement keys.
_TS_DIGITS = 12


def measurement_key(metric: MetricId, timestamp: int) -> str:
    """The store key for one measurement: metric path + padded timestamp.

    Padding keeps lexicographic order equal to time order *within a
    metric*, which is what the sliding-window scans rely on.
    """
    return f"{metric.path}|{timestamp:0{_TS_DIGITS}d}"


@dataclass(frozen=True)
class Measurement:
    """One aggregated data point for one metric over one interval."""

    metric: MetricId
    value: float
    minimum: float
    maximum: float
    timestamp: int
    duration: int

    def __post_init__(self):
        if not self.minimum <= self.value <= self.maximum:
            raise ValueError(
                f"measurement value {self.value} outside "
                f"[{self.minimum}, {self.maximum}]"
            )
        if self.duration < 0:
            raise ValueError("duration cannot be negative")

    @property
    def key(self) -> str:
        """The store key for this measurement."""
        return measurement_key(self.metric, self.timestamp)

    def to_record(self) -> Record:
        """Map onto the benchmark's five-field record layout."""
        return Record(self.key, {
            "field0": f"{self.value:.4g}"[:10],
            "field1": f"{self.minimum:.4g}"[:10],
            "field2": f"{self.maximum:.4g}"[:10],
            "field3": str(self.timestamp)[:10],
            "field4": str(self.duration)[:10],
        })

    @classmethod
    def from_record(cls, metric: MetricId, record: Record) -> "Measurement":
        """Inverse of :meth:`to_record`."""
        return cls(
            metric=metric,
            value=float(record.fields["field0"]),
            minimum=float(record.fields["field1"]),
            maximum=float(record.fields["field2"]),
            timestamp=int(record.fields["field3"]),
            duration=int(record.fields["field4"]),
        )
