"""Monitoring agents and agent fleets.

Section 1 sizes the problem: a data centre of 10 K nodes, each reporting
an average of 10 K metrics every 10 seconds — ten million measurements a
second.  :class:`AgentFleet` generates exactly that shape of traffic (at
configurable scale) as a deterministic stream of
:class:`~repro.core.metrics.Measurement` records, either for direct
functional loading into a store or as a simulation process that inserts
through a store session at the reporting interval.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.metrics import Measurement, MetricId, MonitoringLevel

__all__ = ["Agent", "AgentFleet"]

_COMPONENTS = ("ServletA", "ServletB", "Database", "MessageQueue",
               "WebService", "Cache", "AuthService", "Mainframe")
_METRIC_KINDS = ("AverageResponseTime", "ConcurrentInvocations",
                 "ErrorsPerInterval", "CPUUtilization",
                 "ConnectionCount", "StallCount")


@dataclass
class Agent:
    """One in-process monitoring agent reporting a fixed metric set."""

    host: str
    name: str
    n_metrics: int
    interval_s: int = 10
    level: MonitoringLevel = MonitoringLevel.BASIC
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self):
        self._rng = random.Random((self.seed, self.host, self.name).__hash__())
        self._metrics = [self._metric_id(i) for i in range(self.n_metrics)]

    def _metric_id(self, index: int) -> MetricId:
        component = _COMPONENTS[index % len(_COMPONENTS)]
        kind = _METRIC_KINDS[(index // len(_COMPONENTS)) % len(_METRIC_KINDS)]
        qualifier = index // (len(_COMPONENTS) * len(_METRIC_KINDS))
        metric = kind if qualifier == 0 else f"{kind}.{qualifier}"
        return MetricId(self.host, self.name, component, metric)

    @property
    def metrics(self) -> list[MetricId]:
        """The metric identities this agent reports."""
        return list(self._metrics)

    @property
    def reports_per_interval(self) -> int:
        """Measurements emitted per reporting interval at this level."""
        return int(self.n_metrics * self.level.value)

    def report(self, timestamp: int) -> Iterator[Measurement]:
        """The agent's measurements for the interval ending at ``timestamp``.

        Values follow a stable per-metric baseline with bounded noise, so
        window aggregates have predictable, testable answers.
        """
        repeat = max(1, int(self.level.value))
        for metric in self._metrics:
            baseline = 10.0 + (hash(metric.path) % 90)
            for r in range(repeat):
                noise = self._rng.random() * 0.2 * baseline
                low = baseline - noise
                high = baseline + noise
                yield Measurement(
                    metric=metric,
                    value=(low + high) / 2,
                    minimum=low,
                    maximum=high,
                    timestamp=timestamp - r,  # trace mode sub-samples
                    duration=self.interval_s,
                )


@dataclass
class AgentFleet:
    """All agents of a monitored data centre."""

    n_hosts: int
    metrics_per_host: int = 100
    interval_s: int = 10
    level: MonitoringLevel = MonitoringLevel.BASIC
    seed: int = 0

    def __post_init__(self):
        self.agents = [
            Agent(host=f"host{i:05d}", name="agent0",
                  n_metrics=self.metrics_per_host,
                  interval_s=self.interval_s, level=self.level,
                  seed=self.seed)
            for i in range(self.n_hosts)
        ]

    @property
    def measurements_per_second(self) -> float:
        """The fleet's aggregate reporting rate."""
        per_interval = sum(a.reports_per_interval for a in self.agents)
        return per_interval / self.interval_s

    def report_all(self, timestamp: int) -> Iterator[Measurement]:
        """Every agent's measurements for one interval."""
        for agent in self.agents:
            yield from agent.report(timestamp)

    def stream(self, start_timestamp: int,
               intervals: int) -> Iterator[Measurement]:
        """Measurements for ``intervals`` consecutive reporting rounds."""
        for i in range(intervals):
            yield from self.report_all(start_timestamp + i * self.interval_s)
