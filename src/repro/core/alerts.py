"""Threshold triggers over monitored metrics (Section 2).

.. deprecated::
    :class:`AlertEngine` is superseded by the SLO burn-rate engine in
    :mod:`repro.obs` (:class:`~repro.obs.slo.SLOEngine`), which is the
    canonical alerting path: it alerts on error-budget *burn rate*
    over paired long/short windows rather than raw thresholds, links
    alerts to exemplar traces, and dumps the flight recorder on
    breach.  This module remains as the paper's literal Section 2
    trigger mechanism (store-backed window queries) for the
    historical-query benchmarks; constructing an :class:`AlertEngine`
    emits a :class:`DeprecationWarning`.

"Some of the metrics are monitored by certain triggers that issue
notifications in extreme cases."  This module provides that on-line
side of APM: a :class:`TriggerRule` watches one metric (or a metric
group) through the store-backed window queries and emits
:class:`Notification` objects when a threshold is breached, with
hysteresis so a flapping metric does not storm the operator.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import Optional

from repro.core.metrics import MetricId
from repro.core.queries import MonitoringQueries

__all__ = ["Comparison", "TriggerRule", "Notification", "AlertEngine"]


class Comparison(enum.Enum):
    """How a rule compares the windowed aggregate to its threshold."""

    ABOVE = ">"
    BELOW = "<"

    def breached(self, value: float, threshold: float) -> bool:
        """Whether ``value`` violates ``threshold`` for this direction."""
        if self is Comparison.ABOVE:
            return value > threshold
        return value < threshold


@dataclass(frozen=True)
class TriggerRule:
    """One alerting rule over a sliding window.

    ``aggregate`` selects the windowed statistic: ``"max"`` uses the
    per-interval maxima (query 1 in Section 2), ``"avg"`` the averages
    (query 2).  ``clear_ratio`` applies hysteresis: a firing rule only
    clears once the value retreats past ``threshold * clear_ratio``
    (for ABOVE; the inverse for BELOW).
    """

    name: str
    metrics: tuple[MetricId, ...]
    threshold: float
    comparison: Comparison = Comparison.ABOVE
    window_s: int = 600
    aggregate: str = "max"
    clear_ratio: float = 0.9

    def __post_init__(self):
        if not self.metrics:
            raise ValueError("a trigger rule needs at least one metric")
        if self.aggregate not in ("max", "avg"):
            raise ValueError("aggregate must be 'max' or 'avg'")
        if not 0 < self.clear_ratio <= 1.0:
            raise ValueError("clear_ratio must be in (0, 1]")

    def clear_threshold(self) -> float:
        """The value the metric must retreat past to clear the alert."""
        if self.comparison is Comparison.ABOVE:
            return self.threshold * self.clear_ratio
        return self.threshold / self.clear_ratio


@dataclass(frozen=True)
class Notification:
    """One emitted alert-state change."""

    rule: str
    kind: str  # "fire" or "clear"
    value: float
    threshold: float
    timestamp: int


@dataclass
class AlertEngine:
    """Evaluates trigger rules against the store via window queries."""

    queries: MonitoringQueries
    rules: list[TriggerRule] = field(default_factory=list)
    _firing: set[str] = field(default_factory=set)
    notifications: list[Notification] = field(default_factory=list)

    def __post_init__(self):
        warnings.warn(
            "repro.core.alerts.AlertEngine is deprecated; the SLO "
            "burn-rate engine in repro.obs is the canonical alerting "
            "path", DeprecationWarning, stacklevel=2)

    def add_rule(self, rule: TriggerRule) -> None:
        """Register a rule (names must be unique)."""
        if any(r.name == rule.name for r in self.rules):
            raise ValueError(f"duplicate rule name {rule.name!r}")
        self.rules.append(rule)

    def is_firing(self, rule_name: str) -> bool:
        """Whether the named rule is currently in the firing state."""
        return rule_name in self._firing

    def _evaluate_rule(self, rule: TriggerRule, now: int):
        if rule.aggregate == "max":
            best: Optional[float] = None
            for metric in rule.metrics:
                value = yield from self.queries.max_over_window(
                    metric, now=now, window_s=rule.window_s)
                if value is not None and (best is None or value > best):
                    best = value
            return best
        value = yield from self.queries.avg_over_window(
            rule.metrics, now=now, window_s=rule.window_s)
        return value

    def evaluate(self, now: int):
        """Process: evaluate every rule at time ``now``.

        Returns the notifications emitted during this evaluation round.
        Missing data never fires a rule (and never clears one either):
        an absent metric is an ingestion problem, not an incident.
        """
        emitted: list[Notification] = []
        for rule in self.rules:
            value = yield from self._evaluate_rule(rule, now)
            if value is None:
                continue
            firing = rule.name in self._firing
            if not firing and rule.comparison.breached(value,
                                                       rule.threshold):
                self._firing.add(rule.name)
                emitted.append(Notification(rule.name, "fire", value,
                                            rule.threshold, now))
            elif firing and not rule.comparison.breached(
                    value, rule.clear_threshold()):
                self._firing.discard(rule.name)
                emitted.append(Notification(rule.name, "clear", value,
                                            rule.threshold, now))
        self.notifications.extend(emitted)
        return emitted
