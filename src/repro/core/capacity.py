"""Capacity planning: the arithmetic of the paper's conclusion.

Section 8: "Considering the initial statement that a maximum of 5% of
the nodes are designated for storing monitoring data, for 12 monitoring
nodes the number of nodes monitored would be around 240.  If agents on
each of these report 10 K measurements every 10 seconds, the total
number of inserts per second is 240 K."

This module holds the *reusable arithmetic* of that calculation —
:func:`required_inserts_per_s`, :func:`storage_budget_nodes` and the
tier-utilisation check — as small pure functions.  The full
simulation-validated planner (:mod:`repro.plan`) consumes these
building blocks: it derives the required rate here, models per-store
per-node throughput analytically (:mod:`repro.plan.model`) and then
validates the surviving configurations by actually simulating them.
:func:`plan_capacity` remains the paper's single-tier check, now a thin
composition of the shared pieces so the Section 8 numbers can never
drift apart between the arithmetic and the planner.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CapacityPlan", "plan_capacity", "required_inserts_per_s",
           "storage_budget_nodes", "tier_utilisation"]


def required_inserts_per_s(monitored_nodes: int, metrics_per_node: int,
                           interval_s: float) -> float:
    """Insert rate a monitored estate generates (the paper's 240 K).

    ``monitored_nodes`` agents each flush ``metrics_per_node``
    measurements every ``interval_s`` seconds::

        required_inserts_per_s(240, 10_000, 10) == 240_000.0

    The same function sizes the load side of :mod:`repro.plan`'s
    :class:`~repro.plan.spec.LoadSpec`, so the planner and the paper
    arithmetic share one source of truth.
    """
    if monitored_nodes < 0 or metrics_per_node < 0:
        raise ValueError("counts cannot be negative")
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    return monitored_nodes * metrics_per_node / interval_s


def tier_utilisation(required_rate: float, storage_nodes: int,
                     throughput_per_node: float) -> float:
    """Fraction of a storage tier's capacity ``required_rate`` consumes.

    ``inf`` when the tier has no capacity at all; values above 1 mean
    the tier cannot sustain the load.
    """
    if storage_nodes < 1:
        raise ValueError("need at least one storage node")
    if required_rate < 0:
        raise ValueError("required rate cannot be negative")
    total = storage_nodes * throughput_per_node
    if total <= 0:
        return 0.0 if required_rate == 0 else float("inf")
    return required_rate / total


@dataclass(frozen=True)
class CapacityPlan:
    """Outcome of a capacity check for an APM storage tier."""

    monitored_nodes: int
    metrics_per_node: int
    interval_s: float
    required_inserts_per_s: float
    storage_nodes: int
    store_throughput_per_node: float
    sustainable: bool
    utilisation: float

    def headroom_factor(self) -> float:
        """How much faster the tier is than required (>1 is sustainable)."""
        if self.required_inserts_per_s == 0:
            return float("inf")
        total = self.storage_nodes * self.store_throughput_per_node
        return total / self.required_inserts_per_s


def plan_capacity(monitored_nodes: int, metrics_per_node: int,
                  interval_s: float, storage_nodes: int,
                  store_throughput_per_node: float) -> CapacityPlan:
    """Check whether a storage tier sustains a monitored estate.

    The paper's worked example::

        plan_capacity(monitored_nodes=240, metrics_per_node=10_000,
                      interval_s=10, storage_nodes=12,
                      store_throughput_per_node=...)

    requires 240 K inserts/s across 12 nodes — "higher than the maximum
    throughput that Cassandra achieves for Workload W on Cluster M but
    not drastically" (Section 8).

    For the search-and-simulate generalisation (store x node-count x
    hardware-profile, SLO percentiles, simulation-validated frontier)
    see :func:`repro.plan.run_plan`.
    """
    required = required_inserts_per_s(monitored_nodes, metrics_per_node,
                                      interval_s)
    utilisation = tier_utilisation(required, storage_nodes,
                                   store_throughput_per_node)
    return CapacityPlan(
        monitored_nodes=monitored_nodes,
        metrics_per_node=metrics_per_node,
        interval_s=interval_s,
        required_inserts_per_s=required,
        storage_nodes=storage_nodes,
        store_throughput_per_node=store_throughput_per_node,
        sustainable=utilisation <= 1.0,
        utilisation=utilisation,
    )


def storage_budget_nodes(monitored_nodes: int,
                         budget_fraction: float = 0.05) -> int:
    """Storage nodes allowed under the paper's 5% infrastructure budget."""
    if not 0 < budget_fraction < 1:
        raise ValueError("budget fraction must be in (0, 1)")
    return max(1, int(monitored_nodes * budget_fraction))
