"""Capacity planning: the arithmetic of the paper's conclusion.

Section 8: "Considering the initial statement that a maximum of 5% of
the nodes are designated for storing monitoring data, for 12 monitoring
nodes the number of nodes monitored would be around 240.  If agents on
each of these report 10 K measurements every 10 seconds, the total
number of inserts per second is 240 K."  The planner generalises that
calculation and compares the required rate with a measured (or assumed)
store throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CapacityPlan", "plan_capacity"]


@dataclass(frozen=True)
class CapacityPlan:
    """Outcome of a capacity check for an APM storage tier."""

    monitored_nodes: int
    metrics_per_node: int
    interval_s: float
    required_inserts_per_s: float
    storage_nodes: int
    store_throughput_per_node: float
    sustainable: bool
    utilisation: float

    def headroom_factor(self) -> float:
        """How much faster the tier is than required (>1 is sustainable)."""
        if self.required_inserts_per_s == 0:
            return float("inf")
        total = self.storage_nodes * self.store_throughput_per_node
        return total / self.required_inserts_per_s


def plan_capacity(monitored_nodes: int, metrics_per_node: int,
                  interval_s: float, storage_nodes: int,
                  store_throughput_per_node: float) -> CapacityPlan:
    """Check whether a storage tier sustains a monitored estate.

    The paper's worked example::

        plan_capacity(monitored_nodes=240, metrics_per_node=10_000,
                      interval_s=10, storage_nodes=12,
                      store_throughput_per_node=...)

    requires 240 K inserts/s across 12 nodes — "higher than the maximum
    throughput that Cassandra achieves for Workload W on Cluster M but
    not drastically" (Section 8).
    """
    if monitored_nodes < 0 or metrics_per_node < 0:
        raise ValueError("counts cannot be negative")
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    if storage_nodes < 1:
        raise ValueError("need at least one storage node")
    required = monitored_nodes * metrics_per_node / interval_s
    total = storage_nodes * store_throughput_per_node
    utilisation = required / total if total > 0 else float("inf")
    return CapacityPlan(
        monitored_nodes=monitored_nodes,
        metrics_per_node=metrics_per_node,
        interval_s=interval_s,
        required_inserts_per_s=required,
        storage_nodes=storage_nodes,
        store_throughput_per_node=store_throughput_per_node,
        sustainable=utilisation <= 1.0,
        utilisation=utilisation,
    )


def storage_budget_nodes(monitored_nodes: int,
                         budget_fraction: float = 0.05) -> int:
    """Storage nodes allowed under the paper's 5% infrastructure budget."""
    if not 0 < budget_fraction < 1:
        raise ValueError("budget fraction must be in (0, 1)")
    return max(1, int(monitored_nodes * budget_fraction))
