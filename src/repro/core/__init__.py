"""The APM domain layer — the paper's primary use case (Section 2).

Application Performance Management tools instrument enterprise systems
and report *metrics* (response times, failure rates, resource
utilisation) from thousands of agents at fixed intervals.  This package
models that producing side and the monitoring queries on top of the
benchmarked stores:

* :mod:`repro.core.metrics` — metric identities and the measurement
  record of Figure 2 (name, value, min, max, timestamp, duration).
* :mod:`repro.core.agents` — agents and agent fleets emitting
  measurements at configurable monitoring levels.
* :mod:`repro.core.queries` — the paper's example monitoring queries:
  on-line sliding-window aggregates and historical (archive) analytics.
* :mod:`repro.core.capacity` — the capacity arithmetic of Section 8
  (how many storage nodes a monitored data centre needs).
"""

from repro.core.metrics import Measurement, MetricId, MonitoringLevel
from repro.core.agents import Agent, AgentFleet
from repro.core.queries import MonitoringQueries
from repro.core.capacity import CapacityPlan, plan_capacity

__all__ = [
    "Agent",
    "AgentFleet",
    "CapacityPlan",
    "Measurement",
    "MetricId",
    "MonitoringLevel",
    "MonitoringQueries",
    "plan_capacity",
]
