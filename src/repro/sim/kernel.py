"""Discrete-event simulation kernel.

A small, deterministic, generator-based event engine in the style of SimPy.
The kernel is the foundation of the cluster substrate that replaces the
paper's physical test beds: every store operation is a :class:`Process`
that yields :class:`Event` objects (timeouts, resource grants, sub-process
completions) and accumulates simulated time.

Design notes
------------
* Events fire in ``(time, sequence)`` order: among simultaneous events the
  one *scheduled first* fires first.  This is the kernel's only ordering
  contract — nothing may rely on any finer tie-breaking.
* The default scheduler is a two-lane calendar queue tuned for the
  mostly-FIFO arrival pattern of a queueing simulation: events scheduled
  with zero delay (grants, process completions, resume bounces — the
  majority) land on an O(1) FIFO *now lane*, and only genuinely timed
  events pay for the binary-heap *far lane* (a heap of bare timestamps
  plus a dict of per-instant buckets).  Two invariants make the lanes
  merge-free: every far-lane time is strictly greater than ``now`` (a
  timed delay is positive by definition), and every event in a bucket
  was scheduled before anything scheduled while the bucket fires (the
  global sequence counter is monotone).  So advancing the clock splices
  a *whole bucket* onto the empty now lane with zero per-event
  comparisons, and the resulting order is exactly the classic heap's
  ``(time, sequence)`` order.  :class:`ReferenceScheduler` keeps the
  original single-heap implementation as the differential-testing oracle
  (``tests/sim/test_kernel_differential.py``).
* A :class:`Process` is itself an :class:`Event` that succeeds with the
  generator's return value, which lets processes wait on each other and
  lets :class:`AllOf` / :class:`AnyOf` compose fan-out RPCs.
* Process bootstraps and resume bounces do not allocate helper events:
  the process schedules *itself* as a resume entry carrying the pending
  ``(ok, value)`` pair.  Each entry still consumes one sequence number at
  exactly the point the old kernel's helper event did, so the event
  stream is bit-for-bit identical — just allocation-free.
* Failures propagate: if a yielded event fails, the exception is thrown
  into the waiting generator; unhandled failures surface from
  :meth:`Simulator.run` as :class:`SimulationError`.
* The simulator carries an opaque ``context`` slot (used by
  ``repro.trace`` for span propagation).  Each :class:`Process` inherits
  the context active at spawn time and swaps it in around every resume,
  so logically-concurrent processes each see their own context exactly
  like thread-locals under a real scheduler.
* A second per-process slot, ``deadline``, carries the active request's
  absolute deadline through the same inherit-and-swap mechanism.  The
  resource/network layers consult :meth:`Simulator.deadline_exceeded` to
  abandon work whose deadline already passed; :meth:`Simulator.detached`
  spawns background server work (flushes, compactions, hint replay) with
  the deadline cleared so it outlives the request that triggered it.
* :meth:`Event.cancel` removes a scheduled event lazily: the queue entry
  stays put but is skipped when popped, so timeout guards that lost a
  race no longer burn a callback dispatch when they expire.
"""

from __future__ import annotations

import heapq
from collections import deque
from functools import partial
from types import GeneratorType
from typing import Any, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "KOf",
    "Simulator",
    "ReferenceScheduler",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised when the simulation itself is used incorrectly."""


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, is *triggered* once :meth:`succeed` or
    :meth:`fail` is called, and then notifies its callbacks exactly once
    when the simulator processes it.

    Internally a single waiting :class:`Process` is held in the
    ``_waiter`` slot (the overwhelmingly common case) and only additional
    subscribers allocate the ``callbacks`` list; notification order is
    registration order either way, matching the original list-only
    implementation.
    """

    __slots__ = ("sim", "_callbacks", "_waiter", "_value", "_ok",
                 "_triggered", "_processed", "_cancelled", "_qseq")

    PENDING = object()

    #: Class-level default so the run loop can dispatch on one flag for
    #: every queued object: only a :class:`Process` ever shadows this
    #: with a per-instance slot (``True`` while it sits in the queue as
    #: a resume entry).
    _resuming = False

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: Optional[list] = None
        self._waiter: Optional["Process"] = None
        self._value: Any = Event.PENDING
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._cancelled = False
        self._qseq = 0

    @property
    def callbacks(self) -> list:
        """Callables run (in registration order) when the event fires.

        A process already waiting via the internal single-waiter slot
        keeps its position: it is notified before anything appended here
        afterwards, exactly as if it had been first in this list.
        """
        cbs = self._callbacks
        if cbs is None:
            cbs = self._callbacks = []
        return cbs

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether callbacks have already run."""
        return self._processed

    @property
    def cancelled(self) -> bool:
        """Whether the event was cancelled before being processed."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception when it failed)."""
        if self._value is Event.PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if self._cancelled:
            raise SimulationError("event was cancelled")
        self._ok = True
        self._value = value
        self._triggered = True
        # Inlined zero-delay schedule (== sim._schedule(self)): this is
        # the hottest trigger path, and the now lane honours the
        # scheduler's ordering contract by construction.
        sim = self.sim
        seq = sim._sequence + 1
        sim._sequence = seq
        self._qseq = seq
        sim._push_now(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if self._cancelled:
            raise SimulationError("event was cancelled")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._triggered = True
        sim = self.sim
        seq = sim._sequence + 1
        sim._sequence = seq
        self._qseq = seq
        sim._push_now(self)
        return self

    def cancel(self) -> "Event":
        """Cancel the event: it will never fire its callbacks.

        Pending events can no longer be triggered; triggered-but-unfired
        events are skipped when their queue entry is popped (lazy
        deletion — the entry is not searched for).  Cancelling an event
        that already ran its callbacks is an error, and cancelling twice
        is a no-op.  A process must never cancel the event it is itself
        waiting on (it would sleep forever).
        """
        if self._processed:
            raise SimulationError("cannot cancel a processed event")
        self._cancelled = True
        return self

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._processed = True
        # Snapshot subscribers before notifying: anything registered
        # *during* notification must never run (one-shot semantics,
        # matching the original swap-then-iterate implementation).
        waiter = self._waiter
        cbs = self._callbacks
        self._waiter = None
        self._callbacks = None
        if waiter is not None:
            waiter._step(self._ok, self._value)
        if cbs is not None:
            for callback in cbs:
                callback(self)

    # Kept as an alias: the pre-fast-path kernel named the notification
    # hook ``_run_callbacks``.
    _run_callbacks = _fire


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        self.sim = sim
        self._callbacks = None
        self._waiter = None
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self._cancelled = False
        self.delay = delay
        # Inlined sim._schedule(self, delay).
        seq = sim._sequence + 1
        sim._sequence = seq
        self._qseq = seq
        if delay == 0.0:
            sim._push_now(self)
        else:
            when = sim._now + delay
            far = sim._far
            bucket = far.get(when)
            if bucket is None:
                far[when] = self
                heapq.heappush(sim._heap, when)
            elif bucket.__class__ is list:
                bucket.append(self)
            else:
                far[when] = [bucket, self]


class Process(Event):
    """A running simulation actor wrapping a generator.

    The generator yields :class:`Event` instances.  When a yielded event
    fires, the process resumes with the event's value (or the exception is
    thrown into the generator if the event failed).  The process — being an
    event itself — succeeds with the generator's return value.

    A process lives in the scheduler queue in one of two roles, told
    apart by ``_resuming``: as a *resume entry* (its generator should be
    advanced with the buffered ``(ok, value)``) or, once the generator
    finishes, as an ordinary triggered event notifying its waiters.  The
    roles never overlap: while a resume is queued the generator is
    suspended, so the process cannot also have completed.
    """

    __slots__ = ("generator", "_send", "_name", "context", "deadline",
                 "_resuming", "_r_ok", "_r_value")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if type(generator) is not GeneratorType \
                and not hasattr(generator, "send"):
            raise SimulationError(
                f"process target must be a generator, got {type(generator).__name__}"
            )
        self.sim = sim
        self._callbacks = None
        self._waiter = None
        self._value = Event.PENDING
        self._ok = True
        self._triggered = False
        self._processed = False
        self._cancelled = False
        self.generator = generator
        # Bound once: every resume calls it, and the bound method skips
        # re-binding ``generator.send`` per hop.
        self._send = generator.send
        self._name = name
        self.context: Any = sim.context
        self.deadline: Optional[float] = sim.deadline
        # Bootstrap: resume on the next kernel step at the current time
        # (inlined sim._schedule(self)).
        self._resuming = True
        self._r_ok = True
        self._r_value: Any = None
        seq = sim._sequence + 1
        sim._sequence = seq
        self._qseq = seq
        sim._push_now(self)

    @property
    def name(self) -> str:
        """The process name (defaults to the generator's name, lazily)."""
        name = self._name
        if name is None:
            name = self._name = getattr(self.generator, "__name__", "process")
        return name

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return not self._triggered

    def _fire(self) -> None:
        if self._cancelled:
            return
        if self._resuming:
            self._resuming = False
            ok, value = self._r_ok, self._r_value
            self._r_value = None
            self._step(ok, value)
            return
        # Completed-process role: notify waiters (Event._fire, inlined —
        # this runs once per process and the extra call layer showed up
        # in kernel profiles).
        self._processed = True
        waiter = self._waiter
        cbs = self._callbacks
        self._waiter = None
        self._callbacks = None
        if waiter is not None:
            waiter._step(self._ok, self._value)
        if cbs is not None:
            for callback in cbs:
                callback(self)

    def _resume(self, event: Event) -> None:
        """Callback-compatible resume (used on the shared-event path)."""
        self._step(event._ok, event._value)

    def _step(self, ok: bool, value: Any) -> None:
        sim = self.sim
        if self.context is None and self.deadline is None \
                and sim.context is None and sim.deadline is None:
            # Fast resume: neither the process nor the simulator carries
            # a trace context or deadline, so the inherit-and-swap around
            # the generator hop is a no-op — skip it and only *capture*
            # if the generator set either slot during this resume.  This
            # is every resume of an untraced, deadline-free run.
            try:
                if ok:
                    target = self._send(value)
                else:
                    target = self.generator.throw(value)
            except StopIteration as stop:
                if sim.context is not None or sim.deadline is not None:
                    self.context = sim.context
                    self.deadline = sim.deadline
                    sim.context = None
                    sim.deadline = None
                # Inlined self.succeed(stop.value) — once per process,
                # but the call frame showed up in kernel profiles.
                if self._triggered:
                    raise SimulationError("event already triggered")
                if self._cancelled:
                    raise SimulationError("event was cancelled")
                self._ok = True
                self._value = stop.value
                self._triggered = True
                seq = sim._sequence + 1
                sim._sequence = seq
                self._qseq = seq
                sim._push_now(self)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate into waiters
                if sim.context is not None or sim.deadline is not None:
                    self.context = sim.context
                    self.deadline = sim.deadline
                    sim.context = None
                    sim.deadline = None
                self.fail(exc)
                return
            if sim.context is not None or sim.deadline is not None:
                self.context = sim.context
                self.deadline = sim.deadline
                sim.context = None
                sim.deadline = None
        else:
            target = self._step_swapped(ok, value)
            if target is None:
                return
        # ``_processed`` doubles as the is-this-an-event check: anything
        # a generator yields that lacks the slot was not an Event (the
        # swapped path pre-validates, so it never lands in the except).
        try:
            target_processed = target._processed
        except AttributeError:
            self._throw_non_event(target)
            return
        if target_processed:
            # The event already fired; bounce — re-queue ourselves so the
            # resume lands at the current time *after* everything already
            # scheduled, exactly where the old kernel's helper event fired
            # (inlined sim._schedule(self)).
            self._resuming = True
            self._r_ok = target._ok
            self._r_value = target._value
            seq = sim._sequence + 1
            sim._sequence = seq
            self._qseq = seq
            sim._push_now(self)
        elif target._waiter is None and target._callbacks is None:
            target._waiter = self
        else:
            target.callbacks.append(self._resume)

    def _step_swapped(self, ok: bool, value: Any) -> Optional[Event]:
        """The general resume: full context/deadline inherit-and-swap.

        Returns the yielded event, or ``None`` when the generator
        finished (or errored) and the process has already been
        triggered.
        """
        sim = self.sim
        prev_context = sim.context
        prev_deadline = sim.deadline
        sim.context = self.context
        sim.deadline = self.deadline
        try:
            try:
                if ok:
                    target = self._send(value)
                else:
                    target = self.generator.throw(value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return None
            except BaseException as exc:  # noqa: BLE001 - propagate into waiters
                self.fail(exc)
                return None
            if not isinstance(target, Event):
                self._throw_non_event(target)
                return None
            return target
        finally:
            # Capture context/deadline mutations made by the generator (span
            # pushes and pops, deadline stamps) and restore whatever was
            # active before the resume.
            self.context = sim.context
            self.deadline = sim.deadline
            sim.context = prev_context
            sim.deadline = prev_deadline

    def _throw_non_event(self, target: Any) -> None:
        """Throw the yielded-non-event error into the generator."""
        exc = SimulationError(
            f"process {self.name!r} yielded non-event {target!r}"
        )
        try:
            self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
        except BaseException as err:  # noqa: BLE001
            self.fail(err)


class AllOf(Event):
    """Succeeds when all child events succeed; fails on the first failure.

    The value is a list of the child events' values, in input order.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            if child.processed:
                self._on_child(child)
            else:
                child.callbacks.append(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if not child.ok:
            self.fail(child._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c._value for c in self._children])


class KOf(Event):
    """Succeeds when ``k`` of the child events have succeeded.

    The quorum-wait building block: a replicated write resumes once the
    required acknowledgements arrive while the stragglers complete in
    the background.  Child failures are tolerated as long as the quorum
    is still achievable — with ``n`` children, up to ``n - k`` failures
    are absorbed; the ``(n - k + 1)``-th failure makes ``k`` successes
    impossible and fails the quorum with that child's exception.  This
    is what lets a replicated write survive a crashed replica when the
    survivors still form a quorum.
    """

    __slots__ = ("_needed", "_failures_left")

    def __init__(self, sim: "Simulator", events: Iterable[Event], k: int):
        super().__init__(sim)
        children = list(events)
        if k < 0 or k > len(children):
            raise SimulationError(
                f"need 0 <= k <= {len(children)}, got {k}"
            )
        self._needed = k
        self._failures_left = len(children) - k
        if k == 0:
            self.succeed()
            return
        for child in children:
            if child.processed:
                self._on_child(child)
            else:
                child.callbacks.append(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if not child.ok:
            self._failures_left -= 1
            if self._failures_left < 0:
                self.fail(child._value)
            return
        self._needed -= 1
        if self._needed == 0:
            self.succeed()


class AnyOf(Event):
    """Succeeds when the first child event triggers.

    The value is the ``(index, value)`` of the first child to fire.
    """

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for index, child in enumerate(self._children):
            if child.processed:
                self._on_child(index, child)
            else:
                child.callbacks.append(
                    lambda c, i=index: self._on_child(i, c)
                )

    def _on_child(self, index: int, child: Event) -> None:
        if self._triggered:
            return
        if child.ok:
            self.succeed((index, child._value))
        else:
            self.fail(child._value)


class Simulator:
    """The event loop: owns simulated time and the pending-event queues.

    The scheduler is a two-lane calendar queue.  The *now lane*
    (``_nowq``) is a deque holding, in FIFO sequence order, events due
    at the current instant; the *far lane* is a binary heap of bare
    fire *times* (``_heap``) whose events live in per-time buckets
    (``_far``) for timed events.  Two invariants make the merge exact
    with no per-event comparison at all:

    * every far-lane time is strictly ``> now`` — pushes are
      ``now + delay`` with ``delay > 0``, and advancing the clock
      consumes a bucket *whole*, so a bucket at the current time never
      lingers;
    * bucket events predate (in sequence) anything scheduled while they
      fire — the global sequence only grows — so when the clock
      advances, splicing the entire bucket onto the (empty) now lane
      preserves exact ``(time, sequence)`` order against everything
      those events then schedule.

    The hot loop is therefore just "pop the now lane; when it is empty,
    pop the next time and splice its bucket" — O(1) deque ops for the
    zero-delay majority, one heap sift per distinct *time* (not per
    event) for the rest.
    """

    __slots__ = ("_now", "_heap", "_far", "_nowq", "_push_now",
                 "_sequence", "context", "deadline", "tracer",
                 "_timeout_pool", "timeout", "process")

    def __init__(self):
        self._now: float = 0.0
        #: Far-lane heap of *times only*.  Heap compares on bare floats
        #: cost roughly half of tuple compares, and the merge test
        #: against the now lane becomes a single float comparison.  Each
        #: time appears once; its events live in the ``_far`` buckets.
        self._heap: list[float] = []
        #: Far-lane buckets: time -> the event scheduled for that
        #: instant, or a list of them (oldest first) when several share
        #: the exact time.  The single-event form skips a list
        #: allocation for the overwhelmingly common unique-time case;
        #: list buckets preserve sequence order because the global
        #: sequence only ever grows, so draining front-to-back is
        #: exactly ``(time, sequence)`` order.
        self._far: dict[float, Any] = {}
        #: The now lane.  A ``deque`` keeps O(1) FIFO ops in C and —
        #: because the object identity never changes — lets the run
        #: loops hoist it into a local once instead of re-reading the
        #: attribute per event.
        self._nowq: "deque[Event]" = deque()
        #: Bound ``_nowq.append`` — the single most-called operation in
        #: the engine; the slot-held bound method saves one attribute
        #: hop per zero-delay schedule.
        self._push_now = self._nowq.append
        self._sequence = 0
        #: Opaque per-process context (the active trace span, when tracing).
        self.context: Any = None
        #: Absolute deadline of the active request, or ``None``.  Inherited
        #: and swapped per process exactly like :attr:`context`.
        self.deadline: Optional[float] = None
        #: The attached ``repro.trace.Tracer``, or ``None`` when not tracing.
        self.tracer: Any = None
        #: Recycled :class:`Timeout` objects for the fused resource fast
        #: path (see ``Resource.use``).  Only events whose full lifecycle
        #: is kernel-controlled are ever pooled.
        self._timeout_pool: list[Timeout] = []
        #: Event factories, bound as C-level partials: ``timeout(delay,
        #: value=None)`` builds a :class:`Timeout`, ``process(generator,
        #: name=None)`` spawns a :class:`Process`.  Held in slots (not
        #: methods) to skip one Python frame per call on the two hottest
        #: construction paths; :class:`ReferenceScheduler` rebinds
        #: ``timeout`` to route around the inlined scheduling.
        self.timeout = partial(Timeout, self)
        self.process = partial(Process, self)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def _timeout_pooled(self, delay: float) -> Timeout:
        """A pooled valueless timeout for callers that own its lifecycle.

        The caller must guarantee nothing else ever sees the object and
        hand it back via :meth:`_recycle_timeout` only after it fired and
        was consumed.  ``Resource.use`` / ``Disk`` / ``Network`` hold
        durations; user-visible timeouts never come from the pool.
        """
        pool = self._timeout_pool
        if not pool:
            return Timeout(self, delay)
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        timeout = pool.pop()
        timeout._processed = False
        timeout.delay = delay
        # Inlined self._schedule(timeout, delay).
        seq = self._sequence + 1
        self._sequence = seq
        timeout._qseq = seq
        if delay == 0.0:
            self._push_now(timeout)
        else:
            when = self._now + delay
            far = self._far
            bucket = far.get(when)
            if bucket is None:
                far[when] = timeout
                heapq.heappush(self._heap, when)
            elif bucket.__class__ is list:
                bucket.append(timeout)
            else:
                far[when] = [bucket, timeout]
        return timeout

    def _recycle_timeout(self, timeout: Timeout) -> None:
        """Return a pool-born timeout after it fired and was consumed."""
        if timeout._processed and not timeout._cancelled \
                and timeout._waiter is None and timeout._callbacks is None \
                and len(self._timeout_pool) < 64:
            self._timeout_pool.append(timeout)

    def detached(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a process that does NOT inherit the active deadline.

        Background server work triggered by a request (commit-log syncs,
        memtable flushes, hint replay, WAL appends) must outlive the
        request's deadline; trace context still propagates so latency
        attribution is unchanged.
        """
        saved = self.deadline
        self.deadline = None
        try:
            return Process(self, generator, name=name)
        finally:
            self.deadline = saved

    def deadline_exceeded(self) -> bool:
        """Whether the active request's deadline has already passed."""
        deadline = self.deadline
        return deadline is not None and self._now >= deadline

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event succeeding once every event in ``events`` has succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event succeeding once any event in ``events`` has triggered."""
        return AnyOf(self, events)

    def k_of(self, events: Iterable[Event], k: int) -> KOf:
        """Event succeeding once ``k`` of ``events`` have succeeded."""
        return KOf(self, events, k)

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        """Queue ``event`` to fire ``delay`` seconds from now.

        Consumes exactly one sequence number per call; the sequence is
        the global tie-breaker among simultaneous events.
        """
        seq = self._sequence + 1
        self._sequence = seq
        event._qseq = seq
        if delay == 0.0:
            self._push_now(event)
        else:
            when = self._now + delay
            far = self._far
            bucket = far.get(when)
            if bucket is None:
                far[when] = event
                heapq.heappush(self._heap, when)
            elif bucket.__class__ is list:
                bucket.append(event)
            else:
                far[when] = [bucket, event]

    def _pop(self) -> Optional[Event]:
        """Dequeue the next event in ``(time, sequence)`` order.

        Advances the clock when the far lane wins.  Returns ``None``
        when both lanes are empty.
        """
        nowq = self._nowq
        if nowq:
            return nowq.popleft()
        heap = self._heap
        if heap:
            when = heapq.heappop(heap)
            bucket = self._far.pop(when)
            self._now = when
            if bucket.__class__ is list:
                nowq.extend(bucket)
                return nowq.popleft()
            return bucket
        return None

    def step(self) -> None:
        """Process the single next event."""
        event = self._pop()
        if event is None:
            raise IndexError("pop from an empty event queue")
        event._fire()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        if self._nowq:
            return self._now
        return self._heap[0] if self._heap else float("inf")

    def _pending(self) -> bool:
        """Whether any event (cancelled or not) is queued."""
        return bool(self._nowq) or bool(self._heap)

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to quiescence), a number (run until
        that simulated time), or an :class:`Event` (run until it fires; its
        value is returned, and a failed event re-raises its exception).

        The two hot drive modes (to quiescence and to a stop event) run
        the pop-and-fire loop inline with the queues held in locals —
        this loop is the single hottest code in the repo, so it trades a
        little duplication with :meth:`_pop` for one less call layer per
        event.
        """
        nowq = self._nowq
        heap = self._heap
        heappop = heapq.heappop
        popleft = nowq.popleft
        far = self._far
        # The fire dispatch is inlined (one branch on the shared
        # ``_resuming`` flag replaces a megamorphic ``_fire`` call):
        # resume entries advance their generator, everything else runs
        # the snapshot-then-notify sequence of :meth:`Event._fire`.
        if isinstance(until, Event):
            stop_event = until
            while not stop_event._processed:
                if nowq:
                    event = popleft()
                elif heap:
                    self._now = when = heappop(heap)
                    bucket = far.pop(when)
                    if bucket.__class__ is list:
                        nowq.extend(bucket)
                        event = popleft()
                    else:
                        event = bucket
                else:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event fired (deadlock?)"
                    )
                if event._cancelled:
                    continue
                if event._resuming:
                    event._resuming = False
                    value = event._r_value
                    event._r_value = None
                    event._step(event._r_ok, value)
                    continue
                event._processed = True
                waiter = event._waiter
                cbs = event._callbacks
                if cbs is None:
                    if waiter is not None:
                        event._waiter = None
                        waiter._step(event._ok, event._value)
                else:
                    event._waiter = None
                    event._callbacks = None
                    if waiter is not None:
                        waiter._step(event._ok, event._value)
                    for callback in cbs:
                        callback(event)
            if stop_event.ok:
                return stop_event._value
            raise stop_event._value
        if until is None:
            while True:
                if nowq:
                    event = popleft()
                elif heap:
                    self._now = when = heappop(heap)
                    bucket = far.pop(when)
                    if bucket.__class__ is list:
                        nowq.extend(bucket)
                        event = popleft()
                    else:
                        event = bucket
                else:
                    return None
                if event._cancelled:
                    continue
                if event._resuming:
                    event._resuming = False
                    value = event._r_value
                    event._r_value = None
                    event._step(event._r_ok, value)
                    continue
                event._processed = True
                waiter = event._waiter
                cbs = event._callbacks
                if cbs is None:
                    if waiter is not None:
                        event._waiter = None
                        waiter._step(event._ok, event._value)
                else:
                    event._waiter = None
                    event._callbacks = None
                    if waiter is not None:
                        waiter._step(event._ok, event._value)
                    for callback in cbs:
                        callback(event)
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon} (now is {self._now})"
            )
        while True:
            if nowq:
                event = self._pop()
            elif heap and heap[0] <= horizon:
                event = self._pop()
            else:
                break
            event._fire()  # type: ignore[union-attr]
        self._now = max(self._now, horizon)
        return None


class _ReferenceLane:
    """A now lane that redirects every append into the single heap.

    Installed as ``_nowq`` by :class:`ReferenceScheduler`.  The kernel's
    inlined trigger paths (``succeed``/``fail``, timeouts, process
    bootstraps and bounces) schedule zero-delay events by appending to
    ``sim._nowq``; here each append becomes the classic
    ``(now, sequence)`` heap push instead.  The lane is always falsy, so
    every inherited queue inspection and run loop takes its heap branch —
    restoring the pre-fast-path single-heap semantics without duplicating
    the driver code.
    """

    __slots__ = ("sim",)

    def __init__(self, sim: "ReferenceScheduler"):
        self.sim = sim

    def __bool__(self) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def append(self, event: Event) -> None:
        sim = self.sim
        heapq.heappush(sim._heap, (sim._now, event._qseq, event))

    def popleft(self) -> Event:
        raise IndexError("the reference now lane is always empty")


class _NoPool:
    """A freelist stand-in that is always empty and always full.

    Installed as ``_timeout_pool`` by :class:`ReferenceScheduler`: falsy,
    so inlined pool-hit fast paths (``Resource.use``) never activate on
    the oracle, and reporting itself at capacity so recycle guards never
    append to it.  The oracle therefore allocates a fresh object per
    event, the trivially correct strategy.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def __len__(self) -> int:
        return 64

    def append(self, item: Any) -> None:  # pragma: no cover - guarded out
        pass

    def pop(self) -> Any:  # pragma: no cover - pools are checked first
        raise IndexError("pop from the reference no-pool")


class ReferenceScheduler(Simulator):
    """The original single-heap scheduler, kept as the differential oracle.

    Every event — zero-delay or timed — goes through one binary heap of
    ``(time, sequence, event)`` tuples, exactly as the pre-fast-path
    kernel did.  Zero-delay scheduling reaches the heap through the
    :class:`_ReferenceLane` now-lane stand-in, and timeout creation is
    rerouted through :meth:`_schedule` (the fast kernel inlines its
    bucket pushes, which must not touch this scheduler's tuple heap).
    The differential suite runs identical workloads through this and the
    calendar-queue :class:`Simulator` and asserts the event orderings and
    result digests match; any ordering bug in the fast lanes shows up as
    a divergence from this oracle.  Slow by design — never use it for
    real experiments.
    """

    __slots__ = ()

    def __init__(self):
        super().__init__()
        self._nowq = _ReferenceLane(self)  # type: ignore[assignment]
        self._push_now = self._nowq.append
        self._timeout_pool = _NoPool()  # type: ignore[assignment]
        self.timeout = self._timed  # type: ignore[assignment]

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        seq = self._sequence + 1
        self._sequence = seq
        event._qseq = seq
        heapq.heappush(self._heap, (self._now + delay, seq, event))

    def _timed(self, delay: float, value: Any = None) -> Timeout:
        """Build a timeout without the fast kernel's inlined push."""
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        timeout = Timeout.__new__(Timeout)
        timeout.sim = self
        timeout._callbacks = None
        timeout._waiter = None
        timeout._value = value
        timeout._ok = True
        timeout._triggered = True
        timeout._processed = False
        timeout._cancelled = False
        timeout.delay = delay
        self._schedule(timeout, delay)
        return timeout

    def _timeout_pooled(self, delay: float) -> Timeout:
        # The oracle never pools: allocation strategy is invisible to
        # the event stream, and fresh objects keep it trivially correct.
        return self._timed(delay)

    def _pop(self) -> Optional[Event]:
        if not self._heap:
            return None
        when, __, event = heapq.heappop(self._heap)
        self._now = when
        return event

    def peek(self) -> float:
        return self._heap[0][0] if self._heap else float("inf")

    def _pending(self) -> bool:
        return bool(self._heap)

    def run(self, until: Optional[Any] = None) -> Any:
        heap = self._heap
        heappop = heapq.heappop
        if isinstance(until, Event):
            stop_event = until
            while not stop_event._processed:
                if not heap:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event fired (deadlock?)"
                    )
                when, __, event = heappop(heap)
                self._now = when
                event._fire()
            if stop_event.ok:
                return stop_event._value
            raise stop_event._value
        if until is None:
            while heap:
                when, __, event = heappop(heap)
                self._now = when
                event._fire()
            return None
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon} (now is {self._now})"
            )
        while heap and heap[0][0] <= horizon:
            when, __, event = heappop(heap)
            self._now = when
            event._fire()
        self._now = max(self._now, horizon)
        return None
