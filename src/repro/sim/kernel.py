"""Discrete-event simulation kernel.

A small, deterministic, generator-based event engine in the style of SimPy.
The kernel is the foundation of the cluster substrate that replaces the
paper's physical test beds: every store operation is a :class:`Process`
that yields :class:`Event` objects (timeouts, resource grants, sub-process
completions) and accumulates simulated time.

Design notes
------------
* Events are scheduled on a binary heap keyed by ``(time, sequence)`` so
  simultaneous events fire in deterministic FIFO order.
* A :class:`Process` is itself an :class:`Event` that succeeds with the
  generator's return value, which lets processes wait on each other and
  lets :class:`AllOf` / :class:`AnyOf` compose fan-out RPCs.
* Failures propagate: if a yielded event fails, the exception is thrown
  into the waiting generator; unhandled failures surface from
  :meth:`Simulator.run` as :class:`SimulationError`.
* The simulator carries an opaque ``context`` slot (used by
  ``repro.trace`` for span propagation).  Each :class:`Process` inherits
  the context active at spawn time and swaps it in around every resume,
  so logically-concurrent processes each see their own context exactly
  like thread-locals under a real scheduler.
* A second per-process slot, ``deadline``, carries the active request's
  absolute deadline through the same inherit-and-swap mechanism.  The
  resource/network layers consult :meth:`Simulator.deadline_exceeded` to
  abandon work whose deadline already passed; :meth:`Simulator.detached`
  spawns background server work (flushes, compactions, hint replay) with
  the deadline cleared so it outlives the request that triggered it.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "KOf",
    "Simulator",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised when the simulation itself is used incorrectly."""


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, is *triggered* once :meth:`succeed` or
    :meth:`fail` is called, and then notifies its callbacks exactly once
    when the simulator processes it.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed")

    PENDING = object()

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = Event.PENDING
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether callbacks have already run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception when it failed)."""
        if self._value is Event.PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._triggered = True
        self.sim._schedule(self)
        return self

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        self._triggered = True
        sim._schedule(self, delay=delay)


class Process(Event):
    """A running simulation actor wrapping a generator.

    The generator yields :class:`Event` instances.  When a yielded event
    fires, the process resumes with the event's value (or the exception is
    thrown into the generator if the event failed).  The process — being an
    event itself — succeeds with the generator's return value.
    """

    __slots__ = ("generator", "name", "context", "deadline", "_waiting_on")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process target must be a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.context: Any = sim.context
        self.deadline: Optional[float] = sim.deadline
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume on the next kernel step at the current time.
        initial = Event(sim)
        initial.callbacks.append(self._resume)
        initial.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return not self._triggered

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        sim = self.sim
        prev_context = sim.context
        prev_deadline = sim.deadline
        sim.context = self.context
        sim.deadline = self.deadline
        try:
            try:
                if event.ok:
                    target = self.generator.send(event._value)
                else:
                    target = self.generator.throw(event._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate into waiters
                self.fail(exc)
                return
            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
                try:
                    self.generator.throw(exc)
                except StopIteration as stop:
                    self.succeed(stop.value)
                except BaseException as err:  # noqa: BLE001
                    self.fail(err)
                return
        finally:
            # Capture context/deadline mutations made by the generator (span
            # pushes and pops, deadline stamps) and restore whatever was
            # active before the resume.
            self.context = sim.context
            self.deadline = sim.deadline
            sim.context = prev_context
            sim.deadline = prev_deadline
        if target.processed:
            # The event already fired; resume immediately at the current time.
            bounce = Event(self.sim)
            bounce.callbacks.append(self._resume)
            bounce._ok = target._ok
            bounce._value = target._value
            bounce._triggered = True
            self.sim._schedule(bounce)
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)


class AllOf(Event):
    """Succeeds when all child events succeed; fails on the first failure.

    The value is a list of the child events' values, in input order.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            if child.processed:
                self._on_child(child)
            else:
                child.callbacks.append(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if not child.ok:
            self.fail(child._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c._value for c in self._children])


class KOf(Event):
    """Succeeds when ``k`` of the child events have succeeded.

    The quorum-wait building block: a replicated write resumes once the
    required acknowledgements arrive while the stragglers complete in
    the background.  Child failures are tolerated as long as the quorum
    is still achievable — with ``n`` children, up to ``n - k`` failures
    are absorbed; the ``(n - k + 1)``-th failure makes ``k`` successes
    impossible and fails the quorum with that child's exception.  This
    is what lets a replicated write survive a crashed replica when the
    survivors still form a quorum.
    """

    __slots__ = ("_needed", "_failures_left")

    def __init__(self, sim: "Simulator", events: Iterable[Event], k: int):
        super().__init__(sim)
        children = list(events)
        if k < 0 or k > len(children):
            raise SimulationError(
                f"need 0 <= k <= {len(children)}, got {k}"
            )
        self._needed = k
        self._failures_left = len(children) - k
        if k == 0:
            self.succeed()
            return
        for child in children:
            if child.processed:
                self._on_child(child)
            else:
                child.callbacks.append(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if not child.ok:
            self._failures_left -= 1
            if self._failures_left < 0:
                self.fail(child._value)
            return
        self._needed -= 1
        if self._needed == 0:
            self.succeed()


class AnyOf(Event):
    """Succeeds when the first child event triggers.

    The value is the ``(index, value)`` of the first child to fire.
    """

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for index, child in enumerate(self._children):
            if child.processed:
                self._on_child(index, child)
            else:
                child.callbacks.append(
                    lambda c, i=index: self._on_child(i, c)
                )

    def _on_child(self, index: int, child: Event) -> None:
        if self._triggered:
            return
        if child.ok:
            self.succeed((index, child._value))
        else:
            self.fail(child._value)


class Simulator:
    """The event loop: owns simulated time and the pending-event heap."""

    def __init__(self):
        self._now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0
        #: Opaque per-process context (the active trace span, when tracing).
        self.context: Any = None
        #: Absolute deadline of the active request, or ``None``.  Inherited
        #: and swapped per process exactly like :attr:`context`.
        self.deadline: Optional[float] = None
        #: The attached ``repro.trace.Tracer``, or ``None`` when not tracing.
        self.tracer: Any = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def detached(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a process that does NOT inherit the active deadline.

        Background server work triggered by a request (commit-log syncs,
        memtable flushes, hint replay, WAL appends) must outlive the
        request's deadline; trace context still propagates so latency
        attribution is unchanged.
        """
        saved = self.deadline
        self.deadline = None
        try:
            return Process(self, generator, name=name)
        finally:
            self.deadline = saved

    def deadline_exceeded(self) -> bool:
        """Whether the active request's deadline has already passed."""
        deadline = self.deadline
        return deadline is not None and self._now >= deadline

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event succeeding once every event in ``events`` has succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event succeeding once any event in ``events`` has triggered."""
        return AnyOf(self, events)

    def k_of(self, events: Iterable[Event], k: int) -> KOf:
        """Event succeeding once ``k`` of ``events`` have succeeded."""
        return KOf(self, events, k)

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (self._now + delay, self._sequence, event))

    def step(self) -> None:
        """Process the single next event."""
        when, __, event = heapq.heappop(self._heap)
        self._now = when
        event._run_callbacks()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to quiescence), a number (run until
        that simulated time), or an :class:`Event` (run until it fires; its
        value is returned, and a failed event re-raises its exception).
        """
        if isinstance(until, Event):
            stop_event = until
            while not stop_event.processed:
                if not self._heap:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event fired (deadlock?)"
                    )
                self.step()
            if stop_event.ok:
                return stop_event._value
            raise stop_event._value
        if until is None:
            while self._heap:
                self.step()
            return None
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon} (now is {self._now})"
            )
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = max(self._now, horizon)
        return None
