"""Switched gigabit-ethernet network model.

The paper's clusters connect all nodes "with a gigabit ethernet network over
a single switch" (Section 3).  We model that topology: each node owns a
full-duplex NIC (separate egress and ingress queues) and the switch itself
is non-blocking, so a transfer is serialised on the sender NIC, delayed by
propagation/switching latency, then serialised on the receiver NIC.

The model captures the two effects the paper's results depend on:

* per-message overhead — small APM records mean the fixed per-packet cost
  dominates, which is why the paper stresses "inefficient resource usage
  for memory, disk and network" with small records (Section 7);
* NIC saturation — a node's ingest rate is ultimately bounded by wire
  bandwidth, which the closed-loop clients can saturate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.sim.faults import (DeadlineExceededError, FlakyLinkError,
                              NodeDownError, PartitionedError)
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.cluster import Node

__all__ = ["NetworkSpec", "Network", "LinkFault", "GIGABIT"]


@dataclass(frozen=True)
class NetworkSpec:
    """Physical parameters of the cluster interconnect."""

    bandwidth_bytes_per_s: float = 125_000_000.0  # 1 Gb/s
    latency_s: float = 100e-6  # one-way propagation + switching
    per_message_overhead_bytes: int = 66  # ethernet + IP + TCP headers
    #: How long a sender waits before giving up on a silently-dropped
    #: message (a partitioned peer): the client-side connect/read timeout.
    #: A *crashed* peer answers with a TCP reset instead, so that failure
    #: costs only one round trip, not this timeout.
    unreachable_timeout_s: float = 0.25

    def wire_time(self, nbytes: int) -> float:
        """Serialisation time for a message of ``nbytes`` payload bytes."""
        total = nbytes + self.per_message_overhead_bytes
        return total / self.bandwidth_bytes_per_s


#: The paper's interconnect: gigabit ethernet through one switch.
GIGABIT = NetworkSpec()


class LinkFault:
    """Gray-failure state of one node's NIC: packet loss and jitter.

    A lossy link is *not* a partition: most messages flow, a seeded
    fraction silently vanish, and delivered messages pick up extra
    latency jitter — the failure mode crash-liveness detection cannot
    see.  The RNG is seeded from the node name so runs stay
    byte-deterministic and independent of which other links degrade.
    """

    __slots__ = ("loss", "jitter_s", "rng", "dropped", "jittered")

    def __init__(self, node_name: str, loss: float, jitter_s: float):
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss probability must be in [0, 1), got {loss}")
        if jitter_s < 0:
            raise ValueError(f"jitter_s must be >= 0, got {jitter_s}")
        self.loss = loss
        self.jitter_s = jitter_s
        self.rng = random.Random(f"flaky-nic:{node_name}")
        self.dropped = 0
        self.jittered = 0


class Network:
    """A single-switch network connecting a set of nodes."""

    def __init__(self, sim: Simulator, spec: NetworkSpec = GIGABIT):
        self.sim = sim
        self.spec = spec
        self._egress: dict[str, Resource] = {}
        self._ingress: dict[str, Resource] = {}
        self._down: set[str] = set()
        #: node name -> partition group id; ``None`` when the net is whole.
        self._partition: dict[str, int] | None = None
        #: node name -> :class:`LinkFault` for degraded NICs (gray failures).
        self._link_faults: dict[str, LinkFault] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_failed = 0
        #: Sends abandoned because the request's deadline had passed.
        self.messages_expired = 0

    def attach(self, node_name: str) -> None:
        """Register a node's NIC queues with the switch."""
        self._egress[node_name] = Resource(
            self.sim, 1, f"nic-out:{node_name}", component="network")
        self._ingress[node_name] = Resource(
            self.sim, 1, f"nic-in:{node_name}", component="network")

    def egress_queue(self, node_name: str) -> Resource:
        """The egress NIC resource for diagnostics."""
        return self._egress[node_name]

    def ingress_queue(self, node_name: str) -> Resource:
        """The ingress NIC resource for diagnostics."""
        return self._ingress[node_name]

    # -- fault state ---------------------------------------------------------

    def set_host_down(self, node_name: str) -> None:
        """Mark a crashed node: its NIC queues drain, peers get resets."""
        self._down.add(node_name)
        self._egress[node_name].shut_down()
        self._ingress[node_name].shut_down()

    def set_host_up(self, node_name: str) -> None:
        """Bring a restarted node back onto the wire."""
        self._down.discard(node_name)
        self._egress[node_name].restore()
        self._ingress[node_name].restore()

    def host_is_down(self, node_name: str) -> bool:
        """Whether ``node_name`` is currently crashed."""
        return node_name in self._down

    def partition(self, groups: Sequence[Iterable[str]]) -> None:
        """Split the switch into isolated groups of nodes.

        Messages within a group flow normally; messages across groups are
        silently dropped (the sender burns its read timeout).  Nodes not
        named in any group form one implicit extra group together.
        """
        membership: dict[str, int] = {}
        for group_id, group in enumerate(groups):
            for name in group:
                membership[name] = group_id
        self._partition = membership

    def heal(self) -> None:
        """Remove any network partition."""
        self._partition = None

    def degrade_link(self, node_name: str, loss: float = 0.0,
                     jitter_s: float = 0.0) -> LinkFault:
        """Make ``node_name``'s NIC flaky: packet loss and/or jitter.

        Every message crossing the degraded link (either direction) is
        dropped with probability ``loss`` (the sender burns its read
        timeout, as for a partition) and delivered messages pick up a
        uniform ``[0, jitter_s)`` delay.  Deterministic per link.
        """
        fault = LinkFault(node_name, loss, jitter_s)
        self._link_faults[node_name] = fault
        return fault

    def restore_link(self, node_name: str) -> None:
        """Clear any gray-failure state on ``node_name``'s NIC."""
        self._link_faults.pop(node_name, None)

    def link_fault(self, node_name: str) -> LinkFault | None:
        """The active :class:`LinkFault` on ``node_name``, if any."""
        return self._link_faults.get(node_name)

    def reachable(self, src: str, dst: str) -> bool:
        """Whether the partition (if any) lets ``src`` reach ``dst``."""
        if self._partition is None or src == dst:
            return True
        implicit = len(self._partition) + 1  # shared group for unlisted nodes
        return (self._partition.get(src, implicit)
                == self._partition.get(dst, implicit))

    # -- data path -----------------------------------------------------------

    def transfer(self, src: str, dst: str, nbytes: int):
        """Process: move ``nbytes`` from node ``src`` to node ``dst``.

        Same-node transfers (client co-located with a server process) skip
        the wire entirely but still pay a small loopback cost.  Degraded
        conditions surface as exceptions: a crashed *destination* answers
        with a reset after one propagation delay, a crashed *source* means
        the sending process's own node died (it fails immediately), and a
        partitioned destination drops the message so the sender waits out
        its read timeout before failing.
        """
        sim = self.sim
        tracer = sim.tracer
        if tracer is None or sim.context is None:
            yield from self._transfer(src, dst, nbytes)
            return
        outer = tracer.start_span(
            "net.transfer", "network",
            {"src": src, "dst": dst, "bytes": nbytes})
        try:
            yield from self._transfer(src, dst, nbytes)
        finally:
            tracer.end_span(outer)

    def _transfer(self, src: str, dst: str, nbytes: int):
        sim = self.sim
        deadline = sim.deadline  # inlined sim.deadline_exceeded()
        if deadline is not None and sim._now >= deadline:
            # A request that is already late never reaches the wire.
            self.messages_expired += 1
            raise DeadlineExceededError(
                f"deadline passed before send {src} -> {dst}")
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if src in self._down:
            self.messages_failed += 1
            raise NodeDownError(f"{src} is down", node=src)
        if src == dst:
            # Loopback: the timer's whole lifecycle is this frame, so it
            # comes from (and returns to) the kernel's timeout freelist.
            timeout = sim._timeout_pooled(5e-6)
            yield timeout
            sim._recycle_timeout(timeout)
            return
        if not self.reachable(src, dst):
            self.messages_failed += 1
            yield sim.timeout(self.spec.unreachable_timeout_s)
            raise PartitionedError(
                f"{src} cannot reach {dst} (partition)", node=dst)
        if dst in self._down:
            self.messages_failed += 1
            yield sim.timeout(2 * self.spec.latency_s)  # SYN + RST
            raise NodeDownError(
                f"connection refused: {dst} is down", node=dst)
        if self._link_faults:
            # Gray failures: a flaky NIC on either end of the link.  The
            # branch costs nothing when no link is degraded, so healthy
            # runs stay byte-identical.
            fault = (self._link_faults.get(src)
                     or self._link_faults.get(dst))
            if fault is not None:
                if fault.loss and fault.rng.random() < fault.loss:
                    fault.dropped += 1
                    self.messages_failed += 1
                    yield sim.timeout(self.spec.unreachable_timeout_s)
                    raise FlakyLinkError(
                        f"packet {src} -> {dst} dropped (flaky NIC)",
                        node=dst)
                if fault.jitter_s:
                    fault.jittered += 1
                    yield sim.timeout(fault.rng.random() * fault.jitter_s)
        wire = self.spec.wire_time(nbytes)
        yield sim.process(self._egress[src].use(wire))
        timeout = sim._timeout_pooled(self.spec.latency_s)
        yield timeout
        sim._recycle_timeout(timeout)
        yield sim.process(self._ingress[dst].use(wire))

    def rpc(self, src: "str | Node", dst: "str | Node", request_bytes: int,
            response_bytes: int, handler):
        """Process: a synchronous request/response exchange.

        ``handler`` is a generator (the server-side work, executed on the
        destination); its return value becomes the RPC's return value.
        This is the building block for every store's client/server hop.
        """
        src_name = src if isinstance(src, str) else src.name
        dst_name = dst if isinstance(dst, str) else dst.name
        yield self.sim.process(self.transfer(src_name, dst_name, request_bytes))
        result = yield self.sim.process(handler)
        yield self.sim.process(self.transfer(dst_name, src_name, response_bytes))
        return result
