"""Deterministic random-number streams.

Every stochastic component (workload generator, cache-model jitter,
service-time noise) draws from its own named stream derived from a single
experiment seed, so that any figure can be regenerated bit-for-bit while
streams stay statistically independent of each other.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of named, reproducibly-seeded ``random.Random`` streams."""

    def __init__(self, seed: int = 42):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big")
            )
        return self._streams[name]

    def fork(self, salt: str) -> "RngRegistry":
        """A registry whose streams are independent of this one's."""
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
