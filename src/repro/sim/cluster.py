"""Node and cluster hardware profiles.

Reproduces the two test beds of Section 3:

* **Cluster M** (memory-bound): 16 Linux nodes, two quad-core Xeons
  (8 cores), 16 GB RAM, two 74 GB disks in RAID 0, gigabit ethernet.
* **Cluster D** (disk-bound): 24 Linux nodes, two dual-core Xeons
  (4 cores), 4 GB RAM, one 74 GB disk, gigabit ethernet.

A :class:`Cluster` instantiates server nodes plus dedicated workload
generator (client) nodes on a shared :class:`~repro.sim.network.Network`,
matching the paper's separation of YCSB client machines from storage nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.sim.disk import Disk, DiskSpec, PageCache
from repro.sim.kernel import Simulator
from repro.sim.network import GIGABIT, Network, NetworkSpec
from repro.sim.resources import Resource

__all__ = [
    "NodeSpec",
    "ClusterSpec",
    "Node",
    "Cluster",
    "CLUSTER_M",
    "CLUSTER_D",
]


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of a single cluster node."""

    cores: int = 8
    core_speed: float = 1.0  # relative to a 2.0 GHz Xeon core
    ram_bytes: int = 16 * 2**30
    disk: DiskSpec = field(default_factory=DiskSpec)
    #: Fraction of RAM the OS page cache / store caches may use.
    cache_fraction: float = 0.7

    @property
    def cache_bytes(self) -> int:
        """RAM available to the page cache on this node."""
        return int(self.ram_bytes * self.cache_fraction)


@dataclass(frozen=True)
class ClusterSpec:
    """A named cluster configuration."""

    name: str
    node: NodeSpec
    max_nodes: int
    network: NetworkSpec = GIGABIT
    #: Client connections opened per server node (Section 3: 128 on M, 8 on D).
    connections_per_node: int = 128
    #: Server nodes served by one client (workload generator) machine.
    servers_per_client: int = 3


#: Cluster M: memory-bound, 16 nodes, 8 cores / 16 GB RAM / RAID-0 disks.
CLUSTER_M = ClusterSpec(
    name="M",
    node=NodeSpec(
        cores=8,
        core_speed=1.0,
        ram_bytes=16 * 2**30,
        disk=DiskSpec(
            seq_bandwidth_bytes_per_s=140_000_000.0,  # two spindles, RAID 0
            seek_time_s=0.004,
            rotational_latency_s=0.002,
            capacity_bytes=148 * 10**9,
            queue_depth=8,
        ),
    ),
    max_nodes=16,
    connections_per_node=128,
)

#: Cluster D: disk-bound, 24 nodes, 4 slower cores / 4 GB RAM / one disk.
#: With only 4 GB of RAM the JVM heaps of the stores crowd out the OS
#: page cache, so a much smaller fraction of memory caches data than on
#: Cluster M.
CLUSTER_D = ClusterSpec(
    name="D",
    node=NodeSpec(
        cores=4,
        core_speed=0.8,
        ram_bytes=4 * 2**30,
        cache_fraction=0.25,
        disk=DiskSpec(
            seq_bandwidth_bytes_per_s=70_000_000.0,
            seek_time_s=0.0045,
            rotational_latency_s=0.003,
            capacity_bytes=74 * 10**9,
            queue_depth=2,
        ),
    ),
    max_nodes=24,
    connections_per_node=8,  # 2 per core (Section 3)
)


class Node:
    """A simulated machine: CPU cores, a disk, a page cache, and a NIC."""

    def __init__(self, sim: Simulator, spec: NodeSpec, name: str,
                 network: Network, role: str = "server"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.network = network
        self.role = role
        # Client-machine CPU burn is attributed separately from server CPU
        # so the breakdown can show driver overhead vs store work.
        self.cpus = Resource(
            sim, spec.cores, f"cpu:{name}",
            component="client" if role == "client" else "cpu")
        self.disk = Disk(sim, spec.disk, name)
        self.page_cache = PageCache(spec.cache_bytes)
        #: Liveness flag driven by the fault-injection layer.
        self.up = True
        #: Gray-failure slowdown: < 1.0 when the node is a *zombie* —
        #: alive (``up`` stays True, liveness detection sees nothing)
        #: but pathologically slow.  Scales every CPU grant.
        self.speed_factor = 1.0
        #: Set when the control plane scales the node in: the node stays
        #: in :attr:`Cluster.servers` (stable indices for in-flight ops)
        #: but no longer accrues node-hours or receives new work.
        self.retired = False
        #: Monotone restart counter: bumps on every recovery, so stores
        #: can tell a freshly restarted node (cold caches) from the one
        #: that crashed.
        self.epoch = 0
        network.attach(name)

    def fail(self) -> None:
        """Crash the node: drain its resources and drop off the network.

        Queued CPU/disk grants fail (their waiting processes receive
        :class:`~repro.sim.faults.ResourceDrainedError`); in-flight and
        future messages to or from the node fail at the network layer;
        new resource claims are refused until :meth:`recover`.
        """
        if not self.up:
            return
        self.up = False
        self.cpus.shut_down()
        self.disk.queue.shut_down()
        self.network.set_host_down(self.name)

    def recover(self) -> None:
        """Restart a crashed node with cold caches.

        Durable state (whatever the store persisted) survives; the page
        cache does not — the restarted node re-reads from disk, exactly
        the post-restart cold-cache penalty a real cluster pays.
        """
        if self.up:
            return
        self.up = True
        self.epoch += 1
        self.cpus.restore()
        self.disk.queue.restore()
        self.network.set_host_up(self.name)
        self.page_cache.evict_all()

    def zombie(self, slowdown: float) -> None:
        """Turn the node into a zombie: alive but ``slowdown``x slower.

        CPU and disk service degrade; :attr:`up` stays True, so
        crash-liveness detection (driver blacklists, the control
        plane's replacement logic) cannot see it — the classic gray
        failure.  :meth:`unzombie` restores full speed.
        """
        if slowdown <= 1.0:
            raise ValueError(f"zombie slowdown must be > 1.0, got {slowdown}")
        if self.speed_factor < 1.0:
            self.disk.restore()  # re-degrading replaces the old factor
        self.speed_factor = 1.0 / slowdown
        self.disk.degrade(slowdown)

    def unzombie(self) -> None:
        """Restore a zombie node to full speed."""
        if self.speed_factor >= 1.0:
            return
        self.speed_factor = 1.0
        self.disk.restore()

    def cpu(self, cost_s: float):
        """Process: execute ``cost_s`` seconds of single-core work here.

        The cost is expressed for a reference core and scaled by this
        node's :attr:`NodeSpec.core_speed` (and the zombie
        :attr:`speed_factor`, normally 1.0).
        """
        yield self.sim.process(self.cpus.use(
            cost_s / (self.spec.core_speed * self.speed_factor)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.name!r}, cores={self.spec.cores})"


class Cluster:
    """A provisioned simulation: server nodes + client nodes + network."""

    def __init__(self, spec: ClusterSpec, n_servers: int,
                 sim: Simulator | None = None,
                 n_clients: int | None = None):
        if n_servers < 1:
            raise ValueError("need at least one server node")
        if n_servers > spec.max_nodes:
            raise ValueError(
                f"cluster {spec.name} has only {spec.max_nodes} nodes, "
                f"requested {n_servers}"
            )
        self.spec = spec
        self.sim = sim or Simulator()
        self.network = Network(self.sim, spec.network)
        self.servers = [
            Node(self.sim, spec.node, f"server-{i}", self.network)
            for i in range(n_servers)
        ]
        if n_clients is None:
            n_clients = -(-n_servers // spec.servers_per_client)  # ceil div
        self.clients = [
            Node(self.sim, spec.node, f"client-{i}", self.network,
                 role="client")
            for i in range(max(1, n_clients))
        ]
        #: Monotone server-name sequence: names are never reused, even
        #: after a retire, so NIC attachments stay unambiguous.
        self._server_seq = n_servers

    @property
    def n_servers(self) -> int:
        """Number of storage server nodes ever provisioned (incl. retired)."""
        return len(self.servers)

    @property
    def active_servers(self) -> list[Node]:
        """Server nodes currently provisioned (not scaled in)."""
        return [node for node in self.servers if not node.retired]

    @property
    def n_active(self) -> int:
        """Number of provisioned (non-retired) server nodes."""
        return sum(1 for node in self.servers if not node.retired)

    @property
    def next_server_name(self) -> str:
        """The name :meth:`add_server` will assign next (decision logs)."""
        return f"server-{self._server_seq}"

    def add_server(self) -> Node:
        """Provision one more server node (scale-out).

        The node is appended to :attr:`servers` — existing indices never
        shift, so in-flight operations holding a server index stay
        valid.  Raises when the cluster is already at ``spec.max_nodes``
        active servers (the paper's fixed fleet is the rental ceiling).
        """
        if self.n_active >= self.spec.max_nodes:
            raise ValueError(
                f"cluster {self.spec.name} is at its {self.spec.max_nodes}"
                f"-node ceiling"
            )
        node = Node(self.sim, self.spec.node,
                    f"server-{self._server_seq}", self.network)
        self._server_seq += 1
        self.servers.append(node)
        return node

    def retire_server(self, node: Node) -> None:
        """Decommission ``node`` (scale-in) after its data has drained.

        The node keeps its slot in :attr:`servers` but is marked
        :attr:`Node.retired` and powered off like a crash: queued grants
        drain, the NIC drops, new claims are refused.  Unlike a crash it
        is never a candidate for replacement.
        """
        if node.retired:
            return
        node.retired = True
        node.fail()

    def node(self, name: str) -> Node:
        """Look up a server or client node by name (fault targeting)."""
        for candidate in self.servers + self.clients:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no node named {name!r} in cluster")

    def client_for_connection(self, connection_index: int) -> Node:
        """Spread client connections round-robin over client machines."""
        return self.clients[connection_index % len(self.clients)]

    def with_cache_fraction(self, fraction: float) -> "Cluster":
        """A fresh cluster identical to this one but with resized caches.

        Used by the memory- vs disk-bound ablation.
        """
        node = replace(self.spec.node, cache_fraction=fraction)
        spec = replace(self.spec, node=node)
        return Cluster(spec, self.n_servers, n_clients=len(self.clients))
