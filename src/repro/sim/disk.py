"""Rotational-disk and page-cache models.

The paper's two clusters differ exactly here: Cluster M nodes hold the whole
data set in RAM (reads hit the OS page cache), while Cluster D's data set
"was larger than the available memory" so reads pay seek + rotational
latency (Section 5.8).  Both effects are modelled:

* :class:`Disk` — a single-spindle (or RAID-0 pair) service station.
  Sequential transfers pay bandwidth only; random accesses pay seek +
  half-rotation first.  Write-back caching on the controller is modelled
  by an optional ``writeback`` flag used for commit-log style appends.
* :class:`PageCache` — an LRU cache of fixed-size blocks used by the
  storage engines to decide whether a logical read touches the disk at all.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.sim.kernel import Simulator
from repro.sim.resources import Resource

__all__ = ["DiskSpec", "Disk", "PageCache"]


@dataclass(frozen=True)
class DiskSpec:
    """Physical parameters of a node-local disk (or RAID array)."""

    seq_bandwidth_bytes_per_s: float = 80_000_000.0
    seek_time_s: float = 0.004
    rotational_latency_s: float = 0.002  # half rotation at 15k rpm ~ 2 ms
    capacity_bytes: int = 74 * 10**9
    queue_depth: int = 4  # NCQ: overlapping requests the controller accepts

    def access_time(self, nbytes: int, sequential: bool) -> float:
        """Service time for one request of ``nbytes``."""
        transfer = nbytes / self.seq_bandwidth_bytes_per_s
        if sequential:
            return transfer
        return self.seek_time_s + self.rotational_latency_s + transfer


class Disk:
    """A disk with a FIFO request queue."""

    def __init__(self, sim: Simulator, spec: DiskSpec, name: str = "disk"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.queue = Resource(sim, spec.queue_depth, f"diskq:{name}",
                              component="disk")
        self.bytes_read = 0
        self.bytes_written = 0
        self.reads = 0
        self.writes = 0
        #: Service-time multiplier for a degraded spindle (fault injection:
        #: a failing disk retries sectors / a RAID array rebuilds).
        self.degrade_factor = 1.0

    def degrade(self, factor: float) -> None:
        """Slow every access by ``factor`` (>= 1.0; 1.0 restores health)."""
        if factor < 1.0:
            raise ValueError(f"degrade factor must be >= 1.0, got {factor}")
        self.degrade_factor = factor

    def restore(self) -> None:
        """Return the disk to full speed."""
        self.degrade_factor = 1.0

    def read(self, nbytes: int, sequential: bool = False):
        """Process: read ``nbytes`` (random unless ``sequential``)."""
        self.reads += 1
        self.bytes_read += nbytes
        duration = (self.spec.access_time(nbytes, sequential)
                    * self.degrade_factor)
        sim = self.sim
        if sim.tracer is not None and sim.context is not None:
            span = sim.tracer.start_span(
                "disk.read", "disk",
                {"disk": self.name, "bytes": nbytes,
                 "sequential": sequential})
            try:
                yield sim.process(self.queue.use(duration))
            finally:
                sim.tracer.end_span(span)
        else:
            yield sim.process(self.queue.use(duration))

    def write(self, nbytes: int, sequential: bool = True, sync: bool = True):
        """Process: write ``nbytes``.

        ``sync=False`` models a write-back / OS-buffered write that is
        acknowledged immediately (a tiny CPU-side cost) and drained later;
        the commit-log group-commit path in the LSM engine uses it.

        ``sync=True`` is an fsync-style durable write: besides the
        transfer it waits for the platter (half a rotation), which is
        what makes per-write syncing catastrophic and group commit
        essential (the group-commit ablation benchmark measures this).
        """
        self.writes += 1
        self.bytes_written += nbytes
        sim = self.sim
        traced = sim.tracer is not None and sim.context is not None
        if not sync:
            if traced:
                span = sim.tracer.start_span(
                    "disk.write", "disk",
                    {"disk": self.name, "bytes": nbytes, "sync": False})
                try:
                    yield sim.timeout(2e-6)
                finally:
                    sim.tracer.end_span(span)
            else:
                # Write-back ack: kernel-owned timer, freelist-recycled.
                timeout = sim._timeout_pooled(2e-6)
                yield timeout
                sim._recycle_timeout(timeout)
            return
        duration = ((self.spec.access_time(nbytes, sequential)
                     + self.spec.rotational_latency_s)
                    * self.degrade_factor)
        if traced:
            span = sim.tracer.start_span(
                "disk.write", "disk",
                {"disk": self.name, "bytes": nbytes, "sync": True})
            try:
                yield sim.process(self.queue.use(duration))
            finally:
                sim.tracer.end_span(span)
        else:
            yield sim.process(self.queue.use(duration))


class PageCache:
    """An LRU cache of fixed-size blocks, keyed by opaque block ids.

    The storage engines map logical record locations to block ids; a miss
    means the engine must issue a real :meth:`Disk.read`.  With
    ``capacity_bytes`` at least as large as the data set this degenerates to
    all-hits after warm-up — the Cluster M regime.
    """

    def __init__(self, capacity_bytes: int, block_size: int = 4096):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self.capacity_blocks = max(0, capacity_bytes // block_size)
        self._blocks: OrderedDict[object, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def hit_ratio(self) -> float:
        """Observed hit ratio since creation."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def access(self, block_id: object) -> bool:
        """Touch a block; returns ``True`` on a cache hit."""
        if self.capacity_blocks == 0:
            self.misses += 1
            return False
        if block_id in self._blocks:
            self._blocks.move_to_end(block_id)
            self.hits += 1
            return True
        self.misses += 1
        self._blocks[block_id] = None
        while len(self._blocks) > self.capacity_blocks:
            self._blocks.popitem(last=False)
        return False

    def insert(self, block_id: object) -> None:
        """Populate a block without counting a hit or miss (write path)."""
        if self.capacity_blocks == 0:
            return
        self._blocks[block_id] = None
        self._blocks.move_to_end(block_id)
        while len(self._blocks) > self.capacity_blocks:
            self._blocks.popitem(last=False)

    def evict_all(self) -> None:
        """Drop every cached block (e.g. after a compaction rewrite)."""
        self._blocks.clear()
