"""Queueing resources for the simulation kernel.

A :class:`Resource` models a server station with a fixed number of slots
(CPU cores, disk queue, NIC, connection pool).  Processes ``yield
resource.request()`` to obtain a slot and must call ``resource.release(req)``
when done.  Utilisation and queueing statistics are tracked so benchmarks
can report on saturation, which is what the paper's "maximum sustainable
throughput" methodology probes.

Past saturation two overload mechanisms bound behaviour:

* ``max_queue`` turns the unbounded FIFO into a bounded one — a request
  arriving at a full queue is rejected deterministically with
  :class:`~repro.sim.faults.OverloadError` (counted in
  :attr:`ResourceStats.rejected`).
* :meth:`use` consults the kernel's per-request deadline slot on entry
  and again when the slot is granted, abandoning work whose deadline has
  already passed (:attr:`ResourceStats.expired`) instead of holding the
  station for a dead request.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.faults import (DeadlineExceededError, OverloadError,
                              ResourceDrainedError)
from repro.sim.kernel import Event, SimulationError, Simulator

__all__ = ["Request", "Resource", "ResourceStats"]


@dataclass
class ResourceStats:
    """Aggregate occupancy statistics for a :class:`Resource`."""

    requests: int = 0
    total_wait_time: float = 0.0
    total_service_time: float = 0.0
    busy_time: float = 0.0
    peak_queue_length: int = 0
    #: Requests refused because the bounded queue was full.
    rejected: int = 0
    #: Holds abandoned because the request's deadline had passed.
    expired: int = 0
    #: Restart counter: bumps when a crashed station is restored.
    generation: int = 0
    #: ``peak_queue_length`` of each completed generation (pre-crash peaks
    #: are archived here on restore so post-recovery saturation analysis
    #: is not polluted by them).
    generation_peaks: list[int] = field(default_factory=list)
    _last_change: float = 0.0
    _area_in_use: float = field(default=0.0, repr=False)

    @property
    def mean_wait_time(self) -> float:
        """Average time a request spent queued before being granted."""
        return self.total_wait_time / self.requests if self.requests else 0.0

    def mean_in_use(self, now: float) -> float:
        """Time-averaged number of busy slots up to ``now``."""
        return self._area_in_use / now if now > 0 else 0.0

    def roll_generation(self) -> None:
        """Archive the live queue peak and start a fresh generation."""
        self.generation_peaks.append(self.peak_queue_length)
        self.peak_queue_length = 0
        self.generation += 1


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "requested_at", "granted_at")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource
        self.requested_at = resource.sim.now
        self.granted_at: Optional[float] = None


class Resource:
    """A FIFO multi-server resource."""

    def __init__(self, sim: Simulator, capacity: int = 1,
                 name: str = "resource", component: str = "resource",
                 max_queue: Optional[int] = None):
        if capacity < 1:
            raise SimulationError(
                f"resource capacity must be >= 1, got {capacity}")
        if max_queue is not None and max_queue < 0:
            raise SimulationError(
                f"max_queue must be >= 0, got {max_queue}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        #: Attribution bucket for traced holds (see ``repro.trace``).
        self.component = component
        #: Queue bound; ``None`` means unbounded.  Mutable so
        #: ``Store.configure_overload`` can arm it post-construction.
        self.max_queue = max_queue
        self.stats = ResourceStats()
        self._in_use = 0
        self._queue: deque[Request] = deque()
        self._down = False

    @property
    def down(self) -> bool:
        """Whether the resource's node has crashed (requests fail fast)."""
        return self._down

    @property
    def in_use(self) -> int:
        """Number of currently occupied slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def busy_seconds(self) -> float:
        """Cumulative time at least one slot was busy, current to now.

        Flushes the time-integral accounting first, so pull-based metrics
        probes read an exact value mid-run rather than one that is stale
        since the last grant/release.
        """
        self._account()
        return self.stats.busy_time

    def slot_seconds(self) -> float:
        """Cumulative busy-slot-seconds (the ``in_use`` time integral).

        Dividing a delta of this by ``elapsed * capacity`` yields the mean
        multi-slot utilisation over that span — the CPU-utilisation figure
        the saturation analyzer reports.
        """
        self._account()
        return self.stats._area_in_use

    def _account(self) -> None:
        now = self.sim.now
        elapsed = now - self.stats._last_change
        if elapsed > 0:
            self.stats._area_in_use += elapsed * self._in_use
            if self._in_use > 0:
                self.stats.busy_time += elapsed
        self.stats._last_change = now

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the slot is granted.

        On a crashed node the claim fails immediately with
        :class:`ResourceDrainedError` — the station no longer serves.
        With a bounded queue (``max_queue``), a claim arriving at a full
        queue fails with :class:`OverloadError` instead of growing it.
        """
        req = Request(self)
        self.stats.requests += 1
        if self._down:
            req.fail(ResourceDrainedError(f"{self.name} is down"))
        elif self._in_use < self.capacity:
            self._grant(req)
        elif (self.max_queue is not None
                and len(self._queue) >= self.max_queue):
            self.stats.rejected += 1
            req.fail(OverloadError(
                f"{self.name} queue full "
                f"({len(self._queue)} >= {self.max_queue})"))
        else:
            self._queue.append(req)
            if len(self._queue) > self.stats.peak_queue_length:
                self.stats.peak_queue_length = len(self._queue)
        return req

    def _grant(self, req: Request) -> None:
        self._account()
        self._in_use += 1
        req.granted_at = self.sim.now
        self.stats.total_wait_time += req.granted_at - req.requested_at
        req.succeed(req)

    def release(self, req: Request) -> None:
        """Return a previously granted slot to the pool."""
        if req.granted_at is None:
            raise SimulationError(
                "cannot release a request that was never granted")
        self._account()
        self.stats.total_service_time += self.sim.now - req.granted_at
        self._in_use -= 1
        if self._queue and self._in_use < self.capacity:
            self._grant(self._queue.popleft())

    def shut_down(self) -> None:
        """Crash the station: fail every queued grant, refuse new ones.

        Requests already *granted* keep their slot — the holder finishes
        its (now meaningless) service and releases; whatever it does next
        on the dead node fails.  Queued requests are drained by failing
        their events, which throws :class:`ResourceDrainedError` into the
        waiting processes.
        """
        if self._down:
            return
        self._down = True
        drained, self._queue = self._queue, deque()
        for req in drained:
            req.fail(ResourceDrainedError(f"{self.name} went down"))

    def restore(self) -> None:
        """Bring a crashed station back into service (node restart).

        Queue statistics roll over to a fresh generation: the pre-crash
        ``peak_queue_length`` is archived in
        :attr:`ResourceStats.generation_peaks` so saturation analysis of
        the recovered station starts from a clean peak.
        """
        if not self._down:
            return
        self._down = False
        self.stats.roll_generation()

    def use(self, duration: float):
        """Convenience process: acquire a slot, hold it for ``duration``.

        Usage from another process::

            yield sim.process(resource.use(0.001))

        Inside a sampled trace the hold emits a span (named after the
        resource, bucketed under :attr:`component`) with a ``wait`` child
        covering any time spent queued for the slot; untraced holds take
        the span-free fast path.

        The active request deadline (``sim.deadline``) is checked on
        entry and again once the slot is granted: an expired request
        releases the slot without holding it and raises
        :class:`DeadlineExceededError`, so a dead request cannot burn
        station time.
        """
        sim = self.sim
        if sim.deadline_exceeded():
            self.stats.expired += 1
            raise DeadlineExceededError(
                f"{self.name}: deadline passed before enqueue")
        tracer = sim.tracer
        if tracer is None or sim.context is None:
            req = self.request()
            yield req
            if sim.deadline_exceeded():
                self.release(req)
                self.stats.expired += 1
                raise DeadlineExceededError(
                    f"{self.name}: deadline passed while queued")
            try:
                yield sim.timeout(duration)
            finally:
                self.release(req)
            return
        outer = tracer.start_span(self.name, self.component)
        try:
            req = self.request()
            if not req.triggered:
                wait = tracer.start_span("wait", "queue")
                try:
                    yield req
                finally:
                    tracer.end_span(wait)
            else:
                yield req
            if sim.deadline_exceeded():
                self.release(req)
                self.stats.expired += 1
                raise DeadlineExceededError(
                    f"{self.name}: deadline passed while queued")
            try:
                yield sim.timeout(duration)
            finally:
                self.release(req)
        finally:
            tracer.end_span(outer)
