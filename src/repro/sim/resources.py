"""Queueing resources for the simulation kernel.

A :class:`Resource` models a server station with a fixed number of slots
(CPU cores, disk queue, NIC, connection pool).  Processes ``yield
resource.request()`` to obtain a slot and must call ``resource.release(req)``
when done.  Utilisation and queueing statistics are tracked so benchmarks
can report on saturation, which is what the paper's "maximum sustainable
throughput" methodology probes.

Past saturation two overload mechanisms bound behaviour:

* ``max_queue`` turns the unbounded FIFO into a bounded one — a request
  arriving at a full queue is rejected deterministically with
  :class:`~repro.sim.faults.OverloadError` (counted in
  :attr:`ResourceStats.rejected`).
* :meth:`use` consults the kernel's per-request deadline slot on entry
  and again when the slot is granted, abandoning work whose deadline has
  already passed (:attr:`ResourceStats.expired`) instead of holding the
  station for a dead request.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappush
from typing import Optional

from repro.sim.faults import (DeadlineExceededError, OverloadError,
                              ResourceDrainedError)
from repro.sim.kernel import Event, SimulationError, Simulator

__all__ = ["Request", "Resource", "ResourceStats"]


@dataclass(slots=True)
class ResourceStats:
    """Aggregate occupancy statistics for a :class:`Resource`."""

    requests: int = 0
    total_wait_time: float = 0.0
    total_service_time: float = 0.0
    busy_time: float = 0.0
    peak_queue_length: int = 0
    #: Requests refused because the bounded queue was full.
    rejected: int = 0
    #: Holds abandoned because the request's deadline had passed.
    expired: int = 0
    #: Restart counter: bumps when a crashed station is restored.
    generation: int = 0
    #: ``peak_queue_length`` of each completed generation (pre-crash peaks
    #: are archived here on restore so post-recovery saturation analysis
    #: is not polluted by them).
    generation_peaks: list[int] = field(default_factory=list)
    _last_change: float = 0.0
    _area_in_use: float = field(default=0.0, repr=False)

    @property
    def mean_wait_time(self) -> float:
        """Average time a request spent queued before being granted."""
        return self.total_wait_time / self.requests if self.requests else 0.0

    def mean_in_use(self, now: float) -> float:
        """Time-averaged number of busy slots up to ``now``."""
        return self._area_in_use / now if now > 0 else 0.0

    def roll_generation(self) -> None:
        """Archive the live queue peak and start a fresh generation."""
        self.generation_peaks.append(self.peak_queue_length)
        self.peak_queue_length = 0
        self.generation += 1


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "requested_at", "granted_at")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource
        self.requested_at = resource.sim._now
        self.granted_at: Optional[float] = None


class Resource:
    """A FIFO multi-server resource."""

    def __init__(self, sim: Simulator, capacity: int = 1,
                 name: str = "resource", component: str = "resource",
                 max_queue: Optional[int] = None):
        if capacity < 1:
            raise SimulationError(
                f"resource capacity must be >= 1, got {capacity}")
        if max_queue is not None and max_queue < 0:
            raise SimulationError(
                f"max_queue must be >= 0, got {max_queue}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        #: Attribution bucket for traced holds (see ``repro.trace``).
        self.component = component
        #: Queue bound; ``None`` means unbounded.  Mutable so
        #: ``Store.configure_overload`` can arm it post-construction.
        self.max_queue = max_queue
        self.stats = ResourceStats()
        self._in_use = 0
        self._queue: deque[Request] = deque()
        self._down = False
        #: Recycled :class:`Request` objects for :meth:`use`'s fast path.
        #: Only requests whose whole lifecycle stayed inside ``use`` are
        #: pooled — requests handed out by :meth:`request` belong to the
        #: caller and are never recycled.
        self._req_pool: list[Request] = []

    @property
    def down(self) -> bool:
        """Whether the resource's node has crashed (requests fail fast)."""
        return self._down

    @property
    def in_use(self) -> int:
        """Number of currently occupied slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def busy_seconds(self) -> float:
        """Cumulative time at least one slot was busy, current to now.

        Flushes the time-integral accounting first, so pull-based metrics
        probes read an exact value mid-run rather than one that is stale
        since the last grant/release.
        """
        self._account()
        return self.stats.busy_time

    def slot_seconds(self) -> float:
        """Cumulative busy-slot-seconds (the ``in_use`` time integral).

        Dividing a delta of this by ``elapsed * capacity`` yields the mean
        multi-slot utilisation over that span — the CPU-utilisation figure
        the saturation analyzer reports.
        """
        self._account()
        return self.stats._area_in_use

    def _account(self) -> None:
        now = self.sim._now
        stats = self.stats
        elapsed = now - stats._last_change
        if elapsed > 0:
            in_use = self._in_use
            stats._area_in_use += elapsed * in_use
            if in_use > 0:
                stats.busy_time += elapsed
            stats._last_change = now

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the slot is granted.

        On a crashed node the claim fails immediately with
        :class:`ResourceDrainedError` — the station no longer serves.
        With a bounded queue (``max_queue``), a claim arriving at a full
        queue fails with :class:`OverloadError` instead of growing it.
        """
        return self._admit(Request(self))

    def _admit(self, req: Request) -> Request:
        """Run the grant/queue/reject decision for a fresh request."""
        self.stats.requests += 1
        if self._down:
            req.fail(ResourceDrainedError(f"{self.name} is down"))
        elif self._in_use < self.capacity:
            self._grant(req)
        elif (self.max_queue is not None
                and len(self._queue) >= self.max_queue):
            self.stats.rejected += 1
            req.fail(OverloadError(
                f"{self.name} queue full "
                f"({len(self._queue)} >= {self.max_queue})"))
        else:
            self._queue.append(req)
            if len(self._queue) > self.stats.peak_queue_length:
                self.stats.peak_queue_length = len(self._queue)
        return req

    def _recycle_request(self, req: Request) -> None:
        """Return a ``use``-private request to the pool once it is inert."""
        if req._processed and not req._cancelled \
                and req._waiter is None and req._callbacks is None \
                and len(self._req_pool) < 64:
            self._req_pool.append(req)

    def _grant(self, req: Request) -> None:
        self._account()
        self._in_use += 1
        now = self.sim._now
        req.granted_at = now
        self.stats.total_wait_time += now - req.requested_at
        req.succeed(req)

    def release(self, req: Request) -> None:
        """Return a previously granted slot to the pool.

        Release-then-grant is the saturated hot path, so the occupancy
        accounting and the handoff grant run inline: one accounting
        flush covers both (the grant happens at the same instant, where
        ``_account`` would see zero elapsed time and do nothing).
        """
        if req.granted_at is None:
            raise SimulationError(
                "cannot release a request that was never granted")
        sim = self.sim
        now = sim._now
        stats = self.stats
        in_use = self._in_use
        elapsed = now - stats._last_change
        if elapsed > 0:
            stats._area_in_use += elapsed * in_use
            if in_use > 0:
                stats.busy_time += elapsed
            stats._last_change = now
        stats.total_service_time += now - req.granted_at
        in_use -= 1
        queue = self._queue
        if queue and in_use < self.capacity:
            # Hand the slot straight to the queue head.  The ``succeed``
            # guards stay: a queued request obtained via ``request()``
            # may have been cancelled or triggered by external code, and
            # that must keep failing loudly exactly as before.
            nxt = queue.popleft()
            self._in_use = in_use + 1
            nxt.granted_at = now
            stats.total_wait_time += now - nxt.requested_at
            if nxt._triggered:
                raise SimulationError("event already triggered")
            if nxt._cancelled:
                raise SimulationError("event was cancelled")
            nxt._ok = True
            nxt._value = nxt
            nxt._triggered = True
            seq = sim._sequence + 1
            sim._sequence = seq
            nxt._qseq = seq
            sim._push_now(nxt)
        else:
            self._in_use = in_use

    def shut_down(self) -> None:
        """Crash the station: fail every queued grant, refuse new ones.

        Requests already *granted* keep their slot — the holder finishes
        its (now meaningless) service and releases; whatever it does next
        on the dead node fails.  Queued requests are drained by failing
        their events, which throws :class:`ResourceDrainedError` into the
        waiting processes.
        """
        if self._down:
            return
        self._down = True
        drained, self._queue = self._queue, deque()
        for req in drained:
            req.fail(ResourceDrainedError(f"{self.name} went down"))

    def restore(self) -> None:
        """Bring a crashed station back into service (node restart).

        Queue statistics roll over to a fresh generation: the pre-crash
        ``peak_queue_length`` is archived in
        :attr:`ResourceStats.generation_peaks` so saturation analysis of
        the recovered station starts from a clean peak.
        """
        if not self._down:
            return
        self._down = False
        self.stats.roll_generation()

    def use(self, duration: float):
        """Convenience process: acquire a slot, hold it for ``duration``.

        Usage from another process::

            yield sim.process(resource.use(0.001))

        Inside a sampled trace the hold emits a span (named after the
        resource, bucketed under :attr:`component`) with a ``wait`` child
        covering any time spent queued for the slot; untraced holds take
        the span-free fast path.

        The active request deadline (``sim.deadline``) is checked on
        entry and again once the slot is granted: an expired request
        releases the slot without holding it and raises
        :class:`DeadlineExceededError`, so a dead request cannot burn
        station time.
        """
        sim = self.sim
        deadline = sim.deadline
        if deadline is not None and sim._now >= deadline:
            self.stats.expired += 1
            raise DeadlineExceededError(
                f"{self.name}: deadline passed before enqueue")
        tracer = sim.tracer
        if tracer is None or sim.context is None:
            # Fused fast path: no spans to emit, so the grant-and-hold
            # runs on pooled Request/Timeout objects (recycled only once
            # inert — fired, consumed, and unreferenced) and the
            # deadline re-check is skipped entirely for the deadline-free
            # majority.  The claim, the uncontended grant, and the
            # recycle guards run inline in this frame — each helper call
            # removed here is 50K+ frames per benchmark run.  The event
            # *stream* is identical to the slow path: same grant event,
            # same timeout, same sequence slots.
            now = sim._now
            pool = self._req_pool
            if pool:
                req = pool.pop()
                # Partial reset: the recycle guard below proved the
                # request inert (processed, uncancelled, unsubscribed),
                # and the grant or failure rewrites ``_ok``/``_value``;
                # ``_triggered`` must clear so the grant's guard passes.
                req._triggered = False
                req._processed = False
                req.requested_at = now
                req.granted_at = None
            else:
                req = Request(self)
            stats = self.stats
            stats.requests += 1
            in_use = self._in_use
            if in_use < self.capacity and not self._down:
                # Inlined uncontended grant (accounting + guard-free
                # succeed); the wait contribution is exactly 0.0, so
                # skipping the add leaves ``total_wait_time``
                # bit-identical.
                elapsed = now - stats._last_change
                if elapsed > 0:
                    stats._area_in_use += elapsed * in_use
                    if in_use > 0:
                        stats.busy_time += elapsed
                    stats._last_change = now
                self._in_use = in_use + 1
                req.granted_at = now
                req._value = req
                req._triggered = True
                seq = sim._sequence + 1
                sim._sequence = seq
                req._qseq = seq
                sim._push_now(req)
            elif self._down:
                req.fail(ResourceDrainedError(f"{self.name} is down"))
            else:
                # Inlined contended admit (the saturated majority at a
                # busy station): bounded-queue reject or FIFO enqueue,
                # mirroring :meth:`_admit` decision for decision.
                queue = self._queue
                maxq = self.max_queue
                if maxq is not None and len(queue) >= maxq:
                    stats.rejected += 1
                    req.fail(OverloadError(
                        f"{self.name} queue full "
                        f"({len(queue)} >= {maxq})"))
                else:
                    queue.append(req)
                    if len(queue) > stats.peak_queue_length:
                        stats.peak_queue_length = len(queue)
            yield req
            if deadline is not None and sim._now >= deadline:
                self.release(req)
                stats.expired += 1
                self._recycle_request(req)
                raise DeadlineExceededError(
                    f"{self.name}: deadline passed while queued")
            # Inlined sim._timeout_pooled(duration) — the hold timer.
            # An empty pool falls through to the virtual call, which is
            # also what keeps ReferenceScheduler correct: its pool
            # stand-in is permanently empty, so the oracle always takes
            # its own rerouted ``_timeout_pooled``.
            tpool = sim._timeout_pool
            if tpool:
                if duration < 0:
                    raise SimulationError(
                        f"negative timeout delay: {duration!r}")
                timeout = tpool.pop()
                timeout._processed = False
                timeout.delay = duration
                seq = sim._sequence + 1
                sim._sequence = seq
                timeout._qseq = seq
                if duration == 0.0:
                    sim._push_now(timeout)
                else:
                    when = sim._now + duration
                    far = sim._far
                    bucket = far.get(when)
                    if bucket is None:
                        far[when] = timeout
                        heappush(sim._heap, when)
                    elif bucket.__class__ is list:
                        bucket.append(timeout)
                    else:
                        far[when] = [bucket, timeout]
            else:
                timeout = sim._timeout_pooled(duration)
            try:
                yield timeout
            finally:
                self.release(req)
            # Inlined _recycle_timeout / _recycle_request guards.
            if timeout._processed and not timeout._cancelled \
                    and timeout._waiter is None \
                    and timeout._callbacks is None \
                    and len(sim._timeout_pool) < 64:
                sim._timeout_pool.append(timeout)
            if req._processed and not req._cancelled \
                    and req._waiter is None and req._callbacks is None \
                    and len(pool) < 64:
                pool.append(req)
            return
        outer = tracer.start_span(self.name, self.component)
        try:
            req = self.request()
            if not req.triggered:
                wait = tracer.start_span("wait", "queue")
                try:
                    yield req
                finally:
                    tracer.end_span(wait)
            else:
                yield req
            if sim.deadline_exceeded():
                self.release(req)
                self.stats.expired += 1
                raise DeadlineExceededError(
                    f"{self.name}: deadline passed while queued")
            try:
                yield sim.timeout(duration)
            finally:
                self.release(req)
        finally:
            tracer.end_span(outer)
