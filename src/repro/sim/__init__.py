"""Discrete-event cluster simulation substrate.

This package stands in for the physical test clusters of the paper
(Section 3): it provides an event-driven simulation kernel
(:mod:`repro.sim.kernel`), queueing resources (:mod:`repro.sim.resources`),
a switched gigabit network model (:mod:`repro.sim.network`), a disk and
page-cache model (:mod:`repro.sim.disk`), and node/cluster hardware profiles
(:mod:`repro.sim.cluster`) matching the paper's "Cluster M" (memory-bound)
and "Cluster D" (disk-bound) machines.

The kernel is deliberately SimPy-like: simulation actors are Python
generators that ``yield`` events (timeouts, resource requests, other
processes) and are resumed when those events fire.  All simulated time is in
seconds; all sizes are in bytes.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import Resource, ResourceStats
from repro.sim.network import Network, NetworkSpec
from repro.sim.disk import Disk, DiskSpec, PageCache
from repro.sim.cluster import (
    CLUSTER_D,
    CLUSTER_M,
    Cluster,
    ClusterSpec,
    Node,
    NodeSpec,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "CLUSTER_D",
    "CLUSTER_M",
    "Cluster",
    "ClusterSpec",
    "Disk",
    "DiskSpec",
    "Event",
    "Network",
    "NetworkSpec",
    "Node",
    "NodeSpec",
    "PageCache",
    "Process",
    "Resource",
    "ResourceStats",
    "SimulationError",
    "Simulator",
    "Timeout",
]
