"""Fault-condition exceptions raised by the simulated substrate.

These are the errors a real client library surfaces when the cluster
degrades: connection refused from a crashed node, a request timing out
into a network partition, an RPC aborted because the server process died
mid-operation.  They live at the ``sim`` layer (below the stores) so the
network, resource, and cluster models can raise them without depending
on the store or chaos machinery above.

Stores and the YCSB client treat every :class:`FaultError` as a
*retryable* infrastructure failure, distinct from
:class:`repro.stores.base.OpError` (a store-level semantic failure such
as Redis running out of memory, which retrying cannot fix).
"""

from __future__ import annotations

__all__ = [
    "FaultError",
    "NodeDownError",
    "PartitionedError",
    "ResourceDrainedError",
    "UnavailableError",
]


class FaultError(Exception):
    """Base class for injected-fault failures (retryable by clients)."""


class NodeDownError(FaultError):
    """The target node is down: connection refused / reset."""


class PartitionedError(FaultError):
    """The target is unreachable across a network partition (timeout)."""


class ResourceDrainedError(FaultError):
    """A pending resource grant was failed because its node crashed."""


class UnavailableError(FaultError):
    """Too few live replicas to satisfy the requested consistency level."""
