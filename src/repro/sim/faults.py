"""Fault-condition exceptions raised by the simulated substrate.

These are the errors a real client library surfaces when the cluster
degrades: connection refused from a crashed node, a request timing out
into a network partition, an RPC aborted because the server process died
mid-operation.  They live at the ``sim`` layer (below the stores) so the
network, resource, and cluster models can raise them without depending
on the store or chaos machinery above.

Stores and the YCSB client treat every :class:`FaultError` as a
*retryable* infrastructure failure, distinct from
:class:`repro.stores.base.OpError` (a store-level semantic failure such
as Redis running out of memory, which retrying cannot fix).

Two overload-era conditions extend the taxonomy:

* :class:`OverloadError` — a *deterministic* admission-control rejection
  (bounded queue full, connection pool exhausted, coordinator shedding).
  It is retryable, but only against the client's retry *budget*: blind
  retries of shed requests are exactly the amplification admission
  control exists to prevent.
* :class:`DeadlineExceededError` — the request's deadline passed while
  it waited or executed.  Deliberately **not** a :class:`FaultError`:
  a request that is already late cannot be fixed by retrying, so the
  client counts it as expired and moves on.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "FaultError",
    "NodeDownError",
    "PartitionedError",
    "FlakyLinkError",
    "ResourceDrainedError",
    "UnavailableError",
    "OverloadError",
    "DeadlineExceededError",
]


class FaultError(Exception):
    """Base class for injected-fault failures (retryable by clients).

    ``node`` optionally names the node involved in the failure so the
    client-side circuit breaker can stop retrying against a node the
    chaos controller has marked down.
    """

    def __init__(self, *args: object, node: Optional[str] = None):
        super().__init__(*args)
        self.node = node


class NodeDownError(FaultError):
    """The target node is down: connection refused / reset."""


class PartitionedError(FaultError):
    """The target is unreachable across a network partition (timeout)."""


class FlakyLinkError(FaultError):
    """A gray failure: the NIC dropped this packet (lossy link).

    Unlike a partition the link is *mostly* alive — some messages get
    through, some silently vanish — so liveness detection based on
    connection refusal never fires.  The sender burns its read timeout
    exactly as for a partition drop."""


class ResourceDrainedError(FaultError):
    """A pending resource grant was failed because its node crashed."""


class UnavailableError(FaultError):
    """Too few live replicas to satisfy the requested consistency level."""


class OverloadError(FaultError):
    """Deterministic admission-control rejection (queue full / load shed).

    Raised by bounded :class:`~repro.sim.resources.Resource` queues,
    store-executor channels, and per-store admission gates when a new
    request would exceed the configured ``max_queue``.  Retryable with
    budget: the YCSB client only retries it while its
    :class:`~repro.overload.budget.RetryBudget` has tokens.
    """


class DeadlineExceededError(Exception):
    """The request's deadline passed before the work could complete.

    Not a :class:`FaultError`: the client never retries an expired
    request.  Raised at the deadline check-sites (resource entry and
    grant, network send, store-executor channels) so the stack abandons
    dead work instead of burning simulated resources on it.
    """
