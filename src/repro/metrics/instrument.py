"""Cluster-wide instrumentation: wiring sim resources into a registry.

:func:`instrument_cluster` registers pull-based probes over the counters
the simulation components already maintain — CPU slot occupancy, disk
queue depth and busy time, NIC busy time, page-cache hits/misses and
network totals.  Because every metric here is a probe, nothing on the
simulation hot path changes when metrics are enabled: the cost is paid
only when the sampler wakes.

The channel names written here are the vocabulary the saturation
analyzer reads; :func:`node_channel` is the single naming helper both
sides share so they cannot drift apart.
"""

from __future__ import annotations

from repro.metrics.registry import MetricsRegistry
from repro.sim.cluster import Cluster, Node

__all__ = ["instrument_cluster", "instrument_node", "node_channel",
           "register_lsm_engine"]


def node_channel(name: str, node: str, role: str) -> str:
    """The canonical channel string for a per-node metric.

    Must agree with :attr:`repro.metrics.registry.Metric.channel` for a
    metric registered with ``node=`` and ``role=`` labels (labels render
    sorted, so ``node`` precedes ``role``).
    """
    return f'{name}{{node="{node}",role="{role}"}}'


def register_lsm_engine(registry: MetricsRegistry, engine,
                        **labels) -> None:
    """Probes over one LSM engine (Cassandra per-node, HBase per-region).

    Covers the engine-level quantities the paper's compaction narrative
    needs: memtable fill, SSTable count, compaction backlog, WAL fsync
    and flush counts.
    """
    registry.probe("lsm_memtable_bytes",
                   lambda e=engine: e.memtable.size_bytes, **labels)
    registry.probe("lsm_sstables",
                   lambda e=engine: len(e.sstables), **labels)
    registry.probe("lsm_compaction_backlog",
                   lambda e=engine: e.compaction_backlog, **labels)
    registry.meter("lsm_wal_syncs_total",
                   lambda e=engine: e.commit_log.syncs, **labels)
    registry.meter("lsm_flushes_total",
                   lambda e=engine: e.flushes, **labels)


def instrument_cluster(registry: MetricsRegistry, cluster: Cluster) -> None:
    """Register probes for every node plus the shared switch."""
    for node in cluster.servers:
        instrument_node(registry, node)
    for node in cluster.clients:
        instrument_node(registry, node)
    net = cluster.network
    registry.meter("net_messages_total", lambda n=net: n.messages_sent)
    registry.meter("net_bytes_total", lambda n=net: n.bytes_sent)
    registry.meter("net_messages_failed_total",
                   lambda n=net: n.messages_failed)
    registry.meter("net_messages_expired_total",
                   lambda n=net: n.messages_expired)


def instrument_node(registry: MetricsRegistry, node: Node) -> None:
    """Register one node's hardware probes.

    Called per node by :func:`instrument_cluster` at setup, and by the
    control plane for servers provisioned mid-run.
    """
    labels = {"node": node.name, "role": node.role}
    cpus = node.cpus
    # CPU: the slot-seconds integral delta / (window * cores) is the mean
    # multi-core utilisation; busy_seconds tracks any-core-busy time.
    registry.meter("node_cpu_slot_seconds", cpus.slot_seconds, **labels)
    registry.meter("node_cpu_busy_seconds", cpus.busy_seconds, **labels)
    registry.probe("node_cpu_queue", lambda r=cpus: r.queue_length, **labels)
    # Overload accounting: admissions refused at a full queue and waits
    # abandoned because the request's deadline passed.
    registry.meter("node_cpu_rejected_total",
                   lambda r=cpus: r.stats.rejected, **labels)
    registry.meter("node_cpu_expired_total",
                   lambda r=cpus: r.stats.expired, **labels)

    disk = node.disk
    registry.meter("node_disk_busy_seconds", disk.queue.busy_seconds,
                   **labels)
    registry.probe("node_disk_queue",
                   lambda d=disk: d.queue.in_use + d.queue.queue_length,
                   **labels)
    registry.meter("node_disk_read_bytes", lambda d=disk: d.bytes_read,
                   **labels)
    registry.meter("node_disk_write_bytes", lambda d=disk: d.bytes_written,
                   **labels)
    registry.meter("node_disk_reads", lambda d=disk: d.reads, **labels)
    registry.meter("node_disk_writes", lambda d=disk: d.writes, **labels)

    net = node.network
    registry.meter("node_nic_out_busy_seconds",
                   net.egress_queue(node.name).busy_seconds, **labels)
    registry.meter("node_nic_in_busy_seconds",
                   net.ingress_queue(node.name).busy_seconds, **labels)

    cache = node.page_cache
    registry.meter("node_cache_hits", lambda c=cache: c.hits, **labels)
    registry.meter("node_cache_misses", lambda c=cache: c.misses, **labels)
