"""Windowed time-series: the shared series representation of the repo.

Every windowed measurement in the system — the fault subsystem's
availability timelines, the metrics sampler's gauge snapshots, the
sustained-throughput verifier's sub-windows — is a mapping from
fixed-width slices of *simulated* time to named numeric channels.
:class:`WindowedSeries` is that one representation; it supports both
*accumulated* channels (counts added into the window they fall in) and
*sampled* channels (a point value stamped at the window's close), and it
renders to one canonical CSV layout so chaos runs and metrics runs
export identically-shaped artefacts.

Determinism contract: the rendering never consults wall-clock time or
unordered iteration — two runs with the same seed produce byte-identical
CSV.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, Mapping, Optional

__all__ = ["SeriesWindow", "WindowedSeries"]


class SeriesWindow:
    """One ``[start, end)`` slice of simulated time and its channel values."""

    __slots__ = ("start", "end", "values")

    def __init__(self, start: float, end: float,
                 values: Mapping[str, float]):
        self.start = start
        self.end = end
        self.values = dict(values)

    @property
    def duration(self) -> float:
        """Window width in simulated seconds."""
        return self.end - self.start

    def get(self, channel: str, default: float = 0.0) -> float:
        """The window's value for ``channel`` (``default`` when absent)."""
        return self.values.get(channel, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SeriesWindow([{self.start:g}, {self.end:g}), "
                f"{len(self.values)} channels)")


class WindowedSeries:
    """Fixed-width windows of simulated time holding named channels.

    Channels are written two ways:

    * :meth:`add` *accumulates* — operation counts, byte deltas, busy-time
      deltas; repeated adds into the same window sum.
    * :meth:`put` *samples* — an instantaneous gauge reading; repeated
      puts into the same window keep the latest value.
    """

    def __init__(self, window_s: float):
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        self.window_s = window_s
        #: window index -> {channel: value}
        self._cells: dict[int, dict[str, float]] = {}
        #: every channel ever written, in first-write order.
        self._channels: dict[str, None] = {}

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def channels(self) -> list[str]:
        """All channel names, sorted (the canonical export order)."""
        return sorted(self._channels)

    def index_of(self, now: float) -> int:
        """The window index containing simulated time ``now``."""
        return int(now / self.window_s)

    # -- writing ---------------------------------------------------------------

    def add(self, now: float, channel: str, amount: float = 1.0) -> None:
        """Accumulate ``amount`` into ``channel`` at time ``now``."""
        self.add_at(self.index_of(now), channel, amount)

    def add_at(self, index: int, channel: str, amount: float = 1.0) -> None:
        """Accumulate ``amount`` into ``channel`` of window ``index``."""
        cell = self._cells.setdefault(index, {})
        cell[channel] = cell.get(channel, 0.0) + amount
        self._channels.setdefault(channel, None)

    def put(self, now: float, channel: str, value: float) -> None:
        """Sample ``value`` for ``channel`` at time ``now`` (last wins)."""
        self.put_at(self.index_of(now), channel, value)

    def put_at(self, index: int, channel: str, value: float) -> None:
        """Sample ``value`` for ``channel`` of window ``index``."""
        self._cells.setdefault(index, {})[channel] = value
        self._channels.setdefault(channel, None)

    # -- reading ---------------------------------------------------------------

    def last_index(self) -> Optional[int]:
        """Highest populated window index (``None`` when empty)."""
        return max(self._cells) if self._cells else None

    def window_at(self, index: int) -> SeriesWindow:
        """The window object for ``index`` (empty channels when idle)."""
        return SeriesWindow(index * self.window_s,
                            (index + 1) * self.window_s,
                            self._cells.get(index, {}))

    def windows(self) -> list[SeriesWindow]:
        """The contiguous series from t=0 through the last active window.

        Idle windows between active ones are included (with empty
        channels), so plots and tables show gaps rather than eliding
        them.
        """
        last = self.last_index()
        if last is None:
            return []
        return [self.window_at(index) for index in range(last + 1)]

    def sum_between(self, channel: str, t0: float, t1: float) -> float:
        """Overlap-weighted sum of an accumulated channel over ``[t0, t1]``.

        Windows partially covered by the interval contribute
        proportionally to the overlap, assuming uniform activity inside
        the window — the standard windowed-rate approximation.
        """
        if t1 <= t0:
            return 0.0
        total = 0.0
        for index in sorted(self._cells):
            value = self._cells[index].get(channel)
            if not value:
                continue
            start = index * self.window_s
            end = start + self.window_s
            overlap = min(end, t1) - max(start, t0)
            if overlap > 0:
                total += value * (overlap / self.window_s)
        return total

    def rate_between(self, channel: str, t0: float, t1: float) -> float:
        """Mean per-second rate of an accumulated channel over ``[t0, t1]``."""
        span = t1 - t0
        if span <= 0:
            return 0.0
        return self.sum_between(channel, t0, t1) / span

    def mean_between(self, channel: str, t0: float, t1: float) -> float:
        """Overlap-weighted mean of a sampled channel over ``[t0, t1]``.

        Only windows that carry a value for ``channel`` participate;
        each is weighted by its overlap with the interval.
        """
        weighted = 0.0
        weight = 0.0
        for index in sorted(self._cells):
            cell = self._cells[index]
            if channel not in cell:
                continue
            start = index * self.window_s
            end = start + self.window_s
            overlap = min(end, t1) - max(start, t0)
            if overlap > 0:
                weighted += cell[channel] * overlap
                weight += overlap
        return weighted / weight if weight > 0 else 0.0

    # -- deterministic rendering ----------------------------------------------

    def to_csv(self, channels: Optional[Iterable[str]] = None) -> str:
        """The canonical CSV: ``start,end,channel,value`` rows.

        Rows are ordered by (window, channel name); floats render via
        ``repr`` so output is byte-stable across runs and platforms.
        """
        selected = sorted(channels) if channels is not None else self.channels
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(["start", "end", "channel", "value"])
        for window in self.windows():
            for channel in selected:
                if channel in window.values:
                    writer.writerow([
                        f"{window.start:.6f}", f"{window.end:.6f}",
                        channel, repr(window.values[channel]),
                    ])
        return buffer.getvalue()

    def to_payload(self) -> dict:
        """A JSON-ready dict mirroring :meth:`to_csv`."""
        return {
            "window_s": self.window_s,
            "channels": self.channels,
            "windows": [
                {
                    "start": round(w.start, 9),
                    "end": round(w.end, 9),
                    "values": {c: w.values[c] for c in sorted(w.values)},
                }
                for w in self.windows()
            ],
        }
