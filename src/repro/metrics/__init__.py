"""Simulation-time telemetry: registry, sampler, saturation analysis.

The metrics subsystem answers the horizontal question the span tracer
(:mod:`repro.trace`) cannot: *what was every node's CPU/disk/NIC doing
at t=40s, and which resource bound the throughput?*  It is built from
four pieces:

* :mod:`repro.metrics.registry` — counters, time-weighted gauges,
  pull-probes and windowed histograms, all stamped with simulated time;
* :mod:`repro.metrics.timeseries` — the shared fixed-window series
  representation (also used by the fault subsystem's availability
  timelines) with one canonical CSV layout;
* :mod:`repro.metrics.sampler` — a simulation process snapshotting the
  registry into the series at a fixed simulated cadence;
* :mod:`repro.metrics.saturation` / :mod:`repro.metrics.sustained` —
  the two analyses the paper's methodology rests on: naming the binding
  resource, and verifying the measured throughput was actually
  *sustained* over the window.

Like tracing, the layer is zero-cost when disabled: instrumentation is
pull-based (probes over counters components already keep), and the few
push sites in store coordinators are behind ``metrics is not None``
guards.
"""

from repro.metrics.registry import (
    Counter,
    Metric,
    MetricsRegistry,
    ProbeGauge,
    ProbeMeter,
    TimeWeightedGauge,
    WindowedHistogram,
)
from repro.metrics.timeseries import SeriesWindow, WindowedSeries
from repro.metrics.sampler import MetricsSampler
from repro.metrics.instrument import (
    instrument_cluster,
    instrument_node,
    node_channel,
)
from repro.metrics.saturation import (
    NodeUtilization,
    ResourceUtilization,
    SaturationReport,
    SaturationVerdict,
    analyze_saturation,
)
from repro.metrics.sustained import (
    SubWindow,
    SustainedVerdict,
    verify_sustained,
)
from repro.metrics.report import MetricsReport

__all__ = [
    "Counter",
    "Metric",
    "MetricsRegistry",
    "MetricsReport",
    "MetricsSampler",
    "NodeUtilization",
    "ProbeGauge",
    "ProbeMeter",
    "ResourceUtilization",
    "SaturationReport",
    "SaturationVerdict",
    "SeriesWindow",
    "SubWindow",
    "SustainedVerdict",
    "TimeWeightedGauge",
    "WindowedHistogram",
    "WindowedSeries",
    "analyze_saturation",
    "instrument_cluster",
    "instrument_node",
    "node_channel",
    "verify_sustained",
]
