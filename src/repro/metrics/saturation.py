"""Resource-saturation analysis: which resource binds the throughput.

The paper's explanations all reduce to naming the saturated resource —
Cluster M is memory/CPU-bound because the working set fits in RAM,
Cluster D is disk-bound because it does not.  :func:`analyze_saturation`
reads the sampled per-node channels written by
:func:`repro.metrics.instrument.instrument_cluster`, computes mean
utilisation per resource over the measurement window, and names the
binding resource with a one-line narrative verdict.

Utilisation definitions (all over the window ``[t0, t1]``):

* **cpu** — busy-slot-seconds / (window x cores): mean multi-core load;
* **disk** — disk busy-seconds / window: fraction of time the disk served;
* **network** — the busier of the node's NIC directions / window;
* **executor** — the store's serialisation point (Redis's single-threaded
  event loop, VoltDB's partition sites, HBase's RPC handler pool),
  present only when the store registers ``store_executor_slot_seconds``
  channels.  This is what lets the analyzer see a store that saturates
  *before* any hardware resource does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.metrics.instrument import node_channel
from repro.metrics.timeseries import WindowedSeries
from repro.sim.cluster import Cluster

__all__ = ["NodeUtilization", "ResourceUtilization", "SaturationReport",
           "SaturationVerdict", "analyze_saturation"]

#: Resources that can be named as the bottleneck, in tie-break order.
RESOURCES = ("cpu", "disk", "network", "executor")

#: Mean utilisation above which a resource counts as saturated.
SATURATION_THRESHOLD = 0.8


@dataclass(frozen=True)
class NodeUtilization:
    """Mean utilisations of one server node over the window."""

    node: str
    cpu: float
    disk: float
    network: float
    #: Store serialisation-point utilisation (None when not registered).
    executor: Optional[float]
    #: Page-cache hit fraction in the window (None when no lookups).
    cache_hit_rate: Optional[float]
    #: Server-side operations applied on this node in the window.
    ops: float

    def get(self, resource: str) -> float:
        """Utilisation of ``resource`` (one of :data:`RESOURCES`)."""
        value = getattr(self, resource)
        return 0.0 if value is None else value


@dataclass(frozen=True)
class ResourceUtilization:
    """Cluster-level view of one resource over the window."""

    resource: str
    mean: float
    peak: float
    peak_node: str


@dataclass(frozen=True)
class SaturationVerdict:
    """The analyzer's conclusion, machine-readable.

    One stable record shared by every consumer — the autoscaling
    controller, ``apmbench run --metrics`` and the exported payloads —
    instead of each parsing the narrative text.
    """

    #: The binding resource (one of :data:`RESOURCES`).
    bottleneck: str
    #: Mean utilisation of the binding resource across servers, in [0, 1]
    #: — the controller's pressure signal.
    pressure: float
    #: Highest single-node utilisation of the binding resource.
    peak: float
    #: The node carrying that peak.
    peak_node: str
    #: Whether the binding resource crossed :data:`SATURATION_THRESHOLD`.
    saturated: bool
    #: The paper-flavoured one-line explanation.
    narrative: str

    def to_dict(self) -> dict:
        """A JSON-ready projection (stable key order via sort_keys)."""
        return {
            "bottleneck": self.bottleneck,
            "pressure": self.pressure,
            "peak": self.peak,
            "peak_node": self.peak_node,
            "saturated": self.saturated,
            "narrative": self.narrative,
        }


@dataclass(frozen=True)
class SaturationReport:
    """Per-node utilisation plus the named binding resource."""

    t0: float
    t1: float
    nodes: tuple[NodeUtilization, ...]
    resources: tuple[ResourceUtilization, ...]
    bottleneck: str
    verdict: str

    def resource(self, name: str) -> ResourceUtilization:
        """The cluster-level summary for resource ``name``."""
        for summary in self.resources:
            if summary.resource == name:
                return summary
        raise KeyError(name)

    @property
    def saturated(self) -> bool:
        """Whether the bottleneck resource is actually saturated."""
        return self.resource(self.bottleneck).mean >= SATURATION_THRESHOLD

    @property
    def summary(self) -> SaturationVerdict:
        """The machine-readable verdict for this window."""
        binding = self.resource(self.bottleneck)
        return SaturationVerdict(
            bottleneck=self.bottleneck,
            pressure=binding.mean,
            peak=binding.peak,
            peak_node=binding.peak_node,
            saturated=self.saturated,
            narrative=self.verdict,
        )

    def render(self) -> str:
        """The per-node utilisation table plus the bottleneck verdict."""
        with_exec = any(n.executor is not None for n in self.nodes)
        exec_header = f"{'exec%':>8}" if with_exec else ""
        lines = [
            f"resource utilisation over [{self.t0:.3f}s, {self.t1:.3f}s]",
            f"{'node':<14}{'cpu%':>8}{'disk%':>8}{'net%':>8}{exec_header}"
            f"{'cache-hit%':>12}{'ops/s':>12}",
        ]
        span = self.t1 - self.t0
        for node in self.nodes:
            hit = (f"{100.0 * node.cache_hit_rate:10.1f}"
                   if node.cache_hit_rate is not None else f"{'-':>10}")
            rate = node.ops / span if span > 0 else 0.0
            exec_cell = ""
            if with_exec:
                exec_cell = (f"{100.0 * node.executor:8.1f}"
                             if node.executor is not None else f"{'-':>8}")
            lines.append(
                f"{node.node:<14}{100.0 * node.cpu:8.1f}"
                f"{100.0 * node.disk:8.1f}{100.0 * node.network:8.1f}"
                f"{exec_cell}{hit:>12}{rate:12.1f}"
            )
        lines.append(f"bottleneck: {self.verdict}")
        return "\n".join(lines)

    def to_payload(self) -> dict:
        """A JSON-ready dict of the report."""
        return {
            "window": {"t0": self.t0, "t1": self.t1},
            "nodes": [
                {
                    "node": n.node,
                    "cpu": n.cpu,
                    "disk": n.disk,
                    "network": n.network,
                    "executor": n.executor,
                    "cache_hit_rate": n.cache_hit_rate,
                    "ops": n.ops,
                }
                for n in self.nodes
            ],
            "resources": [
                {
                    "resource": r.resource,
                    "mean": r.mean,
                    "peak": r.peak,
                    "peak_node": r.peak_node,
                }
                for r in self.resources
            ],
            "bottleneck": self.bottleneck,
            "saturated": self.saturated,
            "verdict": self.verdict,
            "summary": self.summary.to_dict(),
        }


def _clamp(value: float) -> float:
    return max(0.0, min(1.0, value))


def analyze_saturation(series: WindowedSeries, cluster: Cluster,
                       t0: float, t1: float,
                       store_name: Optional[str] = None) -> SaturationReport:
    """Name the binding resource over ``[t0, t1]`` from sampled channels.

    ``store_name`` selects the per-node op-count channels registered by
    the store's ``attach_metrics``; without it, op rates report as 0.
    """
    span = t1 - t0
    if span <= 0:
        raise ValueError(f"empty measurement window: [{t0}, {t1}]")

    nodes = []
    for node in cluster.servers:
        if node.retired:
            # Scaled-in nodes are powered off: their frozen meters would
            # only dilute the cluster means the controller acts on.
            continue
        name, role = node.name, node.role

        def total(metric: str) -> float:
            return series.sum_between(node_channel(metric, name, role),
                                      t0, t1)

        cpu = _clamp(total("node_cpu_slot_seconds")
                     / (span * node.spec.cores))
        disk = _clamp(total("node_disk_busy_seconds") / span)
        nic = _clamp(max(total("node_nic_out_busy_seconds"),
                         total("node_nic_in_busy_seconds")) / span)
        hits = total("node_cache_hits")
        misses = total("node_cache_misses")
        lookups = hits + misses
        hit_rate = hits / lookups if lookups > 0 else None
        ops = 0.0
        executor = None
        if store_name is not None:
            ops = series.sum_between(
                f'store_node_ops{{node="{name}",store="{store_name}"}}',
                t0, t1)
            exec_busy = series.sum_between(
                f'store_executor_slot_seconds'
                f'{{node="{name}",store="{store_name}"}}', t0, t1)
            slots = series.mean_between(
                f'store_executor_slots'
                f'{{node="{name}",store="{store_name}"}}', t0, t1)
            if slots > 0:
                executor = _clamp(exec_busy / (span * slots))
        nodes.append(NodeUtilization(node=name, cpu=cpu, disk=disk,
                                     network=nic, executor=executor,
                                     cache_hit_rate=hit_rate, ops=ops))

    with_exec = any(n.executor is not None for n in nodes)
    resources = []
    for resource in RESOURCES:
        if resource == "executor" and not with_exec:
            continue
        values = [(n.get(resource), n.node) for n in nodes]
        mean = sum(v for v, __ in values) / len(values) if values else 0.0
        peak, peak_node = max(values) if values else (0.0, "")
        resources.append(ResourceUtilization(resource=resource, mean=mean,
                                             peak=peak, peak_node=peak_node))

    # Highest mean wins; max() keeps the first of equals, so ties break
    # toward the earlier entry in RESOURCES and the verdict is
    # deterministic.
    bottleneck = max(resources, key=lambda r: r.mean).resource
    verdict = _narrative(bottleneck, resources, nodes)
    return SaturationReport(t0=t0, t1=t1, nodes=tuple(nodes),
                            resources=tuple(resources),
                            bottleneck=bottleneck, verdict=verdict)


def _narrative(bottleneck: str, resources: list[ResourceUtilization],
               nodes: list[NodeUtilization]) -> str:
    """The paper-flavoured one-liner naming the binding resource."""
    mean = next(r.mean for r in resources if r.resource == bottleneck)
    rated = [n.cache_hit_rate for n in nodes if n.cache_hit_rate is not None]
    hit_rate = sum(rated) / len(rated) if rated else None
    head = (f"{bottleneck} (mean {100.0 * mean:.1f}% across "
            f"{len(nodes)} servers)")
    if bottleneck == "executor":
        return (f"{head} — store-bound: the store's serialisation point "
                f"(event loop / handler pool / partition sites) binds "
                f"before the hardware")
    if mean < 0.5:
        return (f"{head} — nothing saturated: throughput is bound "
                f"elsewhere (client count, serialisation, or the offered "
                f"load)")
    if bottleneck == "disk":
        if hit_rate is not None and hit_rate < 0.9:
            return (f"{head} — disk-bound: page-cache hit rate "
                    f"{100.0 * hit_rate:.1f}%, the working set spills to "
                    f"disk (Cluster D pattern)")
        return f"{head} — disk-bound (Cluster D pattern)"
    if bottleneck == "cpu":
        if hit_rate is not None and hit_rate >= 0.9:
            return (f"{head} — memory/CPU-bound: page-cache hit rate "
                    f"{100.0 * hit_rate:.1f}%, the working set fits in "
                    f"RAM (Cluster M pattern)")
        return f"{head} — CPU-bound"
    return f"{head} — network-bound: the interconnect binds before " \
           f"CPU or disk"
