"""Sustained-throughput verification: the paper's sustainability test.

The paper reports *maximum sustainable throughput* — a rate the store
holds for the whole measurement window, not a burst that decays once
memtables fill or compaction kicks in.  :func:`verify_sustained` splits
the window into equal sub-windows, computes the throughput of each from
the run's operation timeline, and flags the run **unsustainable** when
the floor sub-window falls more than ``tolerance`` below the peak
(compaction dips, hinted-handoff backlog, GC-style stalls all show up
here).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["SubWindow", "SustainedVerdict", "verify_sustained"]


@dataclass(frozen=True)
class SubWindow:
    """One slice of the measurement window and its mean throughput."""

    start: float
    end: float
    throughput: float


@dataclass(frozen=True)
class SustainedVerdict:
    """The outcome of splitting the window and comparing peak to floor."""

    windows: tuple[SubWindow, ...]
    peak: float
    floor: float
    #: (peak - floor) / peak; 0 when perfectly flat.
    degradation: float
    tolerance: float
    sustained: bool

    def render(self) -> str:
        """Per-sub-window throughputs plus the sustained/unsustainable line."""
        lines = ["sustained-throughput check"]
        for window in self.windows:
            lines.append(f"  [{window.start:8.3f}s, {window.end:8.3f}s) "
                         f"{window.throughput:10.1f} ops/s")
        verdict = "SUSTAINED" if self.sustained else "UNSUSTAINABLE"
        lines.append(
            f"  peak {self.peak:.1f} ops/s, floor {self.floor:.1f} ops/s, "
            f"degradation {100.0 * self.degradation:.1f}% "
            f"(tolerance {100.0 * self.tolerance:.0f}%) -> {verdict}"
        )
        return "\n".join(lines)

    def to_payload(self) -> dict:
        """A JSON-ready dict of the verdict."""
        return {
            "windows": [
                {"start": w.start, "end": w.end, "throughput": w.throughput}
                for w in self.windows
            ],
            "peak": self.peak,
            "floor": self.floor,
            "degradation": self.degradation,
            "tolerance": self.tolerance,
            "sustained": self.sustained,
        }


def verify_sustained(timeline, t0: float, t1: float,
                     subwindows: int = 4,
                     tolerance: float = 0.25) -> SustainedVerdict:
    """Split ``[t0, t1]`` into ``subwindows`` slices and compare rates.

    ``timeline`` is the fault subsystem's :class:`~repro.faults.
    availability.AvailabilityTimeline` (or anything exposing its
    ``series`` / ``throughput_between``).  Sub-window rates prefer the
    underlying series' overlap-weighted ``rate_between`` so slices
    narrower than a timeline bucket still resolve; the fully-inside
    ``throughput_between`` is the fallback.
    """
    if subwindows < 2:
        raise ValueError(f"need >= 2 subwindows, got {subwindows}")
    if not 0.0 <= tolerance <= 1.0:
        raise ValueError(f"tolerance must be in [0, 1], got {tolerance}")
    span = t1 - t0
    if span <= 0:
        raise ValueError(f"empty measurement window: [{t0}, {t1}]")

    series = getattr(timeline, "series", None)
    if series is not None:
        # Snap the window inward to whole timeline buckets: edge buckets
        # are only partially covered by the run, and the series' uniform-
        # activity apportioning would misread them as throughput dips.
        # Keep the raw bounds when the run is too short to afford it.
        w = series.window_s
        t0a = math.ceil(t0 / w - 1e-9) * w
        t1a = math.floor(t1 / w + 1e-9) * w
        if t1a - t0a >= subwindows * w:
            t0, t1 = t0a, t1a
            span = t1 - t0

    def rate(start: float, end: float) -> float:
        if series is not None:
            return series.rate_between("ops", start, end)
        return timeline.throughput_between(start, end)

    width = span / subwindows
    windows = []
    for k in range(subwindows):
        start = t0 + k * width
        end = t1 if k == subwindows - 1 else start + width
        windows.append(SubWindow(start=start, end=end,
                                 throughput=rate(start, end)))

    peak = max(w.throughput for w in windows)
    floor = min(w.throughput for w in windows)
    degradation = (peak - floor) / peak if peak > 0 else 0.0
    return SustainedVerdict(windows=tuple(windows), peak=peak, floor=floor,
                            degradation=degradation, tolerance=tolerance,
                            sustained=degradation <= tolerance)
