"""The bundle a metrics-enabled run hands back to its caller.

A :class:`MetricsReport` groups everything the telemetry layer produced
for one benchmark: the registry (final counter values), the sampled
timeseries, the saturation report, and the sustained-throughput
verdict — plus the render/export helpers the CLI uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.metrics.registry import MetricsRegistry
from repro.metrics.saturation import SaturationReport
from repro.metrics.sustained import SustainedVerdict
from repro.metrics.timeseries import WindowedSeries

__all__ = ["MetricsReport"]


@dataclass
class MetricsReport:
    """Everything the metrics layer collected for one run."""

    registry: MetricsRegistry
    series: WindowedSeries
    saturation: Optional[SaturationReport]
    sustained: Optional[SustainedVerdict]
    #: Trace exemplars retained by the observability layer (``None``
    #: when the run carried no :class:`~repro.obs.policy.ObsPolicy`).
    exemplars: Optional[object] = None

    @property
    def bottleneck(self) -> Optional[str]:
        """The named binding resource (None when analysis was skipped)."""
        return self.saturation.bottleneck if self.saturation else None

    def render(self) -> str:
        """Utilisation table + bottleneck verdict + sustainability check."""
        parts = []
        if self.saturation is not None:
            parts.append(self.saturation.render())
        if self.sustained is not None:
            parts.append(self.sustained.render())
        if not parts:
            parts.append("(no metrics analysis available)")
        return "\n\n".join(parts)

    def to_csv(self) -> str:
        """The sampled timeseries in the shared CSV layout."""
        return self.series.to_csv()

    def to_prometheus(self) -> str:
        """The final registry snapshot in Prometheus text format.

        With exemplars attached, histogram ``_count`` lines carry
        OpenMetrics ``# {trace_id="..."}`` annotations.
        """
        from repro.analysis.prometheus import registry_to_prometheus
        exemplar_map = (self.exemplars.prometheus_exemplars()
                        if self.exemplars is not None else None)
        return registry_to_prometheus(self.registry,
                                      exemplars=exemplar_map)

    def exemplars_csv(self) -> str:
        """Exemplar grid as CSV ('' when no exemplars were retained)."""
        return (self.exemplars.to_csv()
                if self.exemplars is not None else "")

    def to_payload(self) -> dict:
        """A JSON-ready dict: series + analyses (no wall-clock data)."""
        return {
            "series": self.series.to_payload(),
            "saturation": (self.saturation.to_payload()
                           if self.saturation else None),
            "sustained": (self.sustained.to_payload()
                          if self.sustained else None),
            "exemplars": (self.exemplars.to_payload()
                          if self.exemplars is not None else None),
        }
