"""Periodic snapshotting of registry metrics into a windowed series.

The :class:`MetricsSampler` is a simulation process that wakes every
``interval_s`` of *simulated* time and writes one row per metric into a
:class:`~repro.metrics.timeseries.WindowedSeries`:

* counters and meters (cumulative) become **per-window deltas** — the
  window's share of the count, from which rates and utilisations follow;
* gauges, probes and histograms become **point samples** — the level at
  the window's close.

The sampler ticks at ``t = k * interval_s`` and attributes the sample to
window ``k - 1`` (the slice that just ended).  A final partial window is
captured by :meth:`close`, which the benchmark runner calls once the
run's clients have drained.
"""

from __future__ import annotations

from repro.metrics.registry import (
    Counter,
    MetricsRegistry,
    ProbeGauge,
    ProbeMeter,
    TimeWeightedGauge,
    WindowedHistogram,
)
from repro.metrics.timeseries import WindowedSeries

__all__ = ["MetricsSampler"]


class MetricsSampler:
    """Snapshots every registry metric at a fixed simulated cadence."""

    def __init__(self, registry: MetricsRegistry, interval_s: float = 0.25):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.registry = registry
        self.interval_s = interval_s
        self.series = WindowedSeries(interval_s)
        self.samples_taken = 0
        self._last_totals: dict[str, float] = {}
        #: Completed full windows (also the index of the partial window).
        self._ticks = 0
        self._closed = False
        self._process = None

    def start(self):
        """Spawn the sampling process on the registry's simulator."""
        if self._process is None:
            self._process = self.registry.sim.process(
                self._run(), name="metrics-sampler")
        return self._process

    def _run(self):
        sim = self.registry.sim
        while not self._closed:
            yield sim.timeout(self.interval_s)
            if self._closed:
                break
            # The tick at t = (k+1) * interval closes window k; counting
            # ticks (rather than dividing sim.now) keeps the window index
            # exact regardless of floating-point drift in the clock.
            self._sample(self._ticks)
            self._ticks += 1

    def _sample(self, index: int) -> None:
        """Write one row of every metric into window ``index``."""
        for metric in self.registry:
            channel = metric.channel
            if isinstance(metric, (Counter, ProbeMeter)):
                total = float(metric.value)
                delta = total - self._last_totals.get(channel, 0.0)
                self._last_totals[channel] = total
                self.series.add_at(index, channel, delta)
            elif isinstance(metric, (TimeWeightedGauge, ProbeGauge)):
                self.series.put_at(index, channel, float(metric.value))
            elif isinstance(metric, WindowedHistogram):
                self.series.put_at(index, channel, float(metric.count))
        self.samples_taken += 1

    def close(self) -> None:
        """Stop sampling and capture the final (possibly partial) window.

        Counter deltas accumulated since the last full tick land in the
        window containing the current simulated time, so no activity at
        the tail of a run escapes the series.
        """
        if self._closed:
            return
        self._closed = True
        now = self.registry.sim.now
        if now > self._ticks * self.interval_s:
            self._sample(self._ticks)
