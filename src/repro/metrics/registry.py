"""The metrics registry: counters, time-weighted gauges, histograms.

A :class:`MetricsRegistry` is attached to a simulator and stamps every
observation with *simulated* time, so telemetry is as deterministic as
the simulation itself.  Four metric kinds cover the stack:

* :class:`Counter` — a monotonically increasing count pushed by
  instrumentation sites (operations routed, replicas fanned out).
* :class:`TimeWeightedGauge` — a piecewise-constant level (queue depth,
  memtable bytes) whose window averages weight each value by how long it
  held, not by how often it was set.
* :class:`ProbeGauge` / :class:`ProbeMeter` — *pull* metrics wrapping a
  callable; probes read state that existing components already maintain
  (``Disk.bytes_read``, ``Resource`` busy time, page-cache hit counts),
  which is what makes the disabled fast path truly zero-cost: nothing is
  recorded anywhere until a sampler or exporter asks.
* :class:`WindowedHistogram` — per-window distribution summaries
  (count / sum / min / max) over fixed slices of simulated time.

Metric identity is ``name`` plus sorted ``labels``; registering the same
identity twice returns the existing instance, so instrumentation sites
can be re-entered safely.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Any, Callable, Optional

from repro.metrics.timeseries import WindowedSeries

__all__ = [
    "Counter",
    "Metric",
    "MetricsRegistry",
    "ProbeGauge",
    "ProbeMeter",
    "TimeWeightedGauge",
    "WindowedHistogram",
]


def _label_key(labels: dict[str, Any]) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Common identity: a name, labels, and a Prometheus-style kind."""

    kind = "untyped"

    def __init__(self, name: str, labels: dict[str, Any]):
        self.name = name
        self.labels = {k: str(v) for k, v in sorted(labels.items())}

    @property
    def channel(self) -> str:
        """The metric's canonical sample name (CSV channel / prom line)."""
        if not self.labels:
            return self.name
        rendered = ",".join(f'{k}="{v}"' for k, v in self.labels.items())
        return f"{self.name}{{{rendered}}}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.channel!r})"


class Counter(Metric):
    """A pushed, monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, Any]):
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0: {amount}")
        self.value += amount


class ProbeMeter(Metric):
    """A pulled cumulative count: ``fn()`` returns the current total.

    Used to surface counts a component already tracks (bytes written,
    cache hits, WAL syncs) without touching its hot path.
    """

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, Any],
                 fn: Callable[[], float]):
        super().__init__(name, labels)
        self._fn = fn

    @property
    def value(self) -> float:
        """The current cumulative total."""
        return float(self._fn())


class ProbeGauge(Metric):
    """A pulled instantaneous level: ``fn()`` returns the current value."""

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, Any],
                 fn: Callable[[], float]):
        super().__init__(name, labels)
        self._fn = fn

    @property
    def value(self) -> float:
        """The current level."""
        return float(self._fn())


class TimeWeightedGauge(Metric):
    """A pushed piecewise-constant level with exact window averaging.

    The gauge records every transition ``(time, value)``; the integral
    over any window is then exact, which gives the averaging its two
    invariants (verified by hypothesis properties):

    * **split/merge invariance** — the integral over ``[t0, t2]`` equals
      the sum of the integrals over ``[t0, t1]`` and ``[t1, t2]``;
    * **window additivity** — the average over a window is the
      duration-weighted mean of the averages over any partition of it.
    """

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, Any],
                 clock: Callable[[], float], initial: float = 0.0):
        super().__init__(name, labels)
        self._clock = clock
        self._initial = initial
        self._times: list[float] = []
        self._values: list[float] = []

    @property
    def value(self) -> float:
        """The current level."""
        return self._values[-1] if self._values else self._initial

    def set(self, value: float) -> None:
        """Record a transition to ``value`` at the current simulated time."""
        now = self._clock()
        if self._times and now < self._times[-1]:
            raise ValueError(
                f"gauge transitions must be in time order: {now} < "
                f"{self._times[-1]}"
            )
        if self._times and self._times[-1] == now:
            self._values[-1] = value
        else:
            self._times.append(now)
            self._values.append(value)

    def adjust(self, delta: float) -> None:
        """Shift the current level by ``delta`` (queue-depth style)."""
        self.set(self.value + delta)

    def integral(self, t0: float, t1: float) -> float:
        """The exact integral of the level over ``[t0, t1]``."""
        if t1 <= t0:
            return 0.0
        index = bisect_right(self._times, t0) - 1
        current = self._values[index] if index >= 0 else self._initial
        cursor = t0
        total = 0.0
        for j in range(index + 1, len(self._times)):
            when = self._times[j]
            if when >= t1:
                break
            total += current * (when - cursor)
            cursor = when
            current = self._values[j]
        total += current * (t1 - cursor)
        return total

    def average(self, t0: float, t1: float) -> float:
        """Time-weighted mean of the level over ``[t0, t1]``."""
        span = t1 - t0
        return self.integral(t0, t1) / span if span > 0 else 0.0


class WindowedHistogram(Metric):
    """Per-window distribution summaries over fixed simulated-time slices.

    Each observation lands in the window containing its timestamp; a
    window tracks count, sum, min and max — enough for rate, mean and
    envelope plots without retaining raw samples.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: dict[str, Any],
                 clock: Callable[[], float], window_s: float = 1.0):
        super().__init__(name, labels)
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        self._clock = clock
        self.window_s = window_s
        #: window index -> [count, total, min, max]
        self._cells: dict[int, list[float]] = {}
        self.count = 0
        self.total = 0.0

    @property
    def value(self) -> float:
        """Total observation count (the Prometheus ``_count`` sample)."""
        return float(self.count)

    def observe(self, value: float) -> None:
        """Record one observation at the current simulated time."""
        index = int(self._clock() / self.window_s)
        cell = self._cells.get(index)
        if cell is None:
            self._cells[index] = [1, value, value, value]
        else:
            cell[0] += 1
            cell[1] += value
            cell[2] = min(cell[2], value)
            cell[3] = max(cell[3], value)
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Mean over every observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def window_stats(self) -> list[tuple[float, float, int, float, float,
                                         float]]:
        """Per-window ``(start, end, count, mean, min, max)`` tuples."""
        out = []
        for index in sorted(self._cells):
            count, total, lo, hi = self._cells[index]
            out.append((index * self.window_s, (index + 1) * self.window_s,
                        int(count), total / count, lo, hi))
        return out

    def series(self) -> WindowedSeries:
        """The histogram's counts/sums as a :class:`WindowedSeries`."""
        series = WindowedSeries(self.window_s)
        for start, __, count, mean, lo, hi in self.window_stats():
            series.add(start, f"{self.name}_count", count)
            series.put(start, f"{self.name}_mean", mean)
            series.put(start, f"{self.name}_min", lo)
            series.put(start, f"{self.name}_max", hi)
        return series


class MetricsRegistry:
    """All metrics of one simulation, keyed by (name, labels).

    The registry is the single holder instrumentation talks to;
    iteration order is always sorted by channel name, so every export
    (CSV, Prometheus, JSON) is deterministic by construction.
    """

    def __init__(self, sim):
        self.sim = sim
        self._metrics: dict[tuple, Metric] = {}
        self._order: list[tuple[str, tuple]] = []

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        for __, key in self._order:
            yield self._metrics[key]

    def _register(self, cls, name: str, labels: dict, factory) -> Metric:
        key = (name, _label_key(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        metric = factory()
        self._metrics[key] = metric
        insort(self._order, (metric.channel, key))
        return metric

    # -- factories -------------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create a pushed counter."""
        return self._register(Counter, name, labels,
                              lambda: Counter(name, labels))

    def meter(self, name: str, fn: Callable[[], float],
              **labels: Any) -> ProbeMeter:
        """Get or create a pulled cumulative counter over ``fn``."""
        return self._register(ProbeMeter, name, labels,
                              lambda: ProbeMeter(name, labels, fn))

    def gauge(self, name: str, initial: float = 0.0,
              **labels: Any) -> TimeWeightedGauge:
        """Get or create a pushed time-weighted gauge."""
        return self._register(
            TimeWeightedGauge, name, labels,
            lambda: TimeWeightedGauge(name, labels,
                                      lambda: self.sim.now, initial))

    def probe(self, name: str, fn: Callable[[], float],
              **labels: Any) -> ProbeGauge:
        """Get or create a pulled instantaneous gauge over ``fn``."""
        return self._register(ProbeGauge, name, labels,
                              lambda: ProbeGauge(name, labels, fn))

    def histogram(self, name: str, window_s: float = 1.0,
                  **labels: Any) -> WindowedHistogram:
        """Get or create a windowed histogram."""
        return self._register(
            WindowedHistogram, name, labels,
            lambda: WindowedHistogram(name, labels,
                                      lambda: self.sim.now, window_s))

    # -- lookups ---------------------------------------------------------------

    def get(self, name: str, **labels: Any) -> Optional[Metric]:
        """The registered metric for ``(name, labels)``, or ``None``."""
        return self._metrics.get((name, _label_key(labels)))

    def snapshot(self) -> list[tuple[str, str, float]]:
        """Deterministic ``(channel, kind, value)`` rows for exporters."""
        return [(m.channel, m.kind, float(m.value)) for m in self]
