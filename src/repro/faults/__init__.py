"""Deterministic fault injection and resilience measurement.

The paper ran every experiment fault-free at replication factor 1 and
left failure behaviour as future work (Section 8).  This package closes
that gap on the simulated substrate:

* :mod:`repro.faults.schedule` — a DSL for chaos plans (node crashes
  and restarts, network partitions, slow disks) at absolute simulated
  times or drawn from a seeded random process;
* :mod:`repro.faults.chaos` — the controller process that applies a
  schedule to a live cluster and notifies deployed stores;
* :mod:`repro.faults.availability` — windowed throughput/error-rate
  timelines, the measurement that makes degradation and recovery
  visible.

Failure *handling* lives where the paper's architectures have it: the
YCSB client retries with backoff (:class:`repro.stores.base.RetryPolicy`),
Cassandra coordinators fail over across replicas and queue hinted
handoffs, the HBase master reassigns regions, and the client-sharded
Redis/MySQL deployments lose the crashed shard's keyspace outright —
their single-point-of-failure design.
"""

from repro.faults.availability import AvailabilityTimeline, AvailabilityWindow
from repro.faults.chaos import ChaosController
from repro.faults.schedule import FaultAction, FaultKind, FaultSchedule
from repro.sim.faults import (
    FaultError,
    NodeDownError,
    PartitionedError,
    ResourceDrainedError,
    UnavailableError,
)

__all__ = [
    "AvailabilityTimeline",
    "AvailabilityWindow",
    "ChaosController",
    "FaultAction",
    "FaultKind",
    "FaultSchedule",
    "FaultError",
    "NodeDownError",
    "PartitionedError",
    "ResourceDrainedError",
    "UnavailableError",
]
