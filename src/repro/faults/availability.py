"""Availability timelines: windowed throughput and error-rate series.

The paper reports scalar throughput over a fault-free measurement
window; an availability experiment needs the *time series* instead —
how many operations completed and how many failed in each small window,
so a fault's impact and the recovery afterwards are visible.

The timeline is a thin domain view over the repo's shared
:class:`~repro.metrics.timeseries.WindowedSeries` (channels ``ops`` and
``errors``), so chaos runs and metrics runs use one windowed-series
representation and one CSV exporter.  Rendering is fully deterministic
(the determinism test asserts byte-identical output for a fixed seed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.timeseries import WindowedSeries

__all__ = ["AvailabilityWindow", "AvailabilityTimeline"]


@dataclass(frozen=True)
class AvailabilityWindow:
    """Operation counts over one ``[start, end)`` slice of sim time."""

    start: float
    end: float
    ops: int
    errors: int

    @property
    def duration(self) -> float:
        """Window width in simulated seconds."""
        return self.end - self.start

    @property
    def error_rate(self) -> float:
        """Fraction of completed operations that failed (0 when idle)."""
        return self.errors / self.ops if self.ops else 0.0

    @property
    def throughput(self) -> float:
        """Completed operations (successes + errors) per second."""
        return self.ops / self.duration if self.duration > 0 else 0.0

    @property
    def goodput(self) -> float:
        """Successful operations per second."""
        if self.duration <= 0:
            return 0.0
        return (self.ops - self.errors) / self.duration


class AvailabilityTimeline:
    """Fixed-width windowed counts of completed operations and errors."""

    def __init__(self, window_s: float = 0.25):
        #: The shared windowed-series representation underneath.
        self.series = WindowedSeries(window_s)

    @property
    def window_s(self) -> float:
        """Window width in simulated seconds."""
        return self.series.window_s

    def record(self, now: float, error: bool) -> None:
        """Count one operation completing at simulated time ``now``."""
        self.series.add(now, "ops", 1.0)
        if error:
            self.series.add(now, "errors", 1.0)

    def windows(self) -> list[AvailabilityWindow]:
        """The contiguous series from t=0 through the last active window."""
        return [
            AvailabilityWindow(
                start=w.start,
                end=w.end,
                ops=int(w.get("ops")),
                errors=int(w.get("errors")),
            )
            for w in self.series.windows()
        ]

    # -- aggregates over a sub-interval ---------------------------------------

    def _between(self, t0: float, t1: float) -> list[AvailabilityWindow]:
        return [w for w in self.windows() if w.start >= t0 and w.end <= t1]

    def error_rate_between(self, t0: float, t1: float) -> float:
        """Pooled error rate over windows fully inside ``[t0, t1]``."""
        selected = self._between(t0, t1)
        ops = sum(w.ops for w in selected)
        errors = sum(w.errors for w in selected)
        return errors / ops if ops else 0.0

    def throughput_between(self, t0: float, t1: float) -> float:
        """Mean completed-ops/s over windows fully inside ``[t0, t1]``."""
        selected = self._between(t0, t1)
        span = sum(w.duration for w in selected)
        return sum(w.ops for w in selected) / span if span > 0 else 0.0

    def goodput_between(self, t0: float, t1: float) -> float:
        """Mean successful-ops/s over windows fully inside ``[t0, t1]``."""
        selected = self._between(t0, t1)
        span = sum(w.duration for w in selected)
        if span <= 0:
            return 0.0
        return sum(w.ops - w.errors for w in selected) / span

    # -- deterministic rendering ----------------------------------------------

    def to_text(self) -> str:
        """A canonical textual rendering (determinism contract + CLI).

        One line per window: ``start end ops errors``.  Two runs with the
        same seed and schedule must produce byte-identical output.
        """
        lines = [
            f"{w.start:.6f} {w.end:.6f} {w.ops} {w.errors}"
            for w in self.windows()
        ]
        return "\n".join(lines)

    def to_csv(self) -> str:
        """The shared ``start,end,channel,value`` CSV of the series."""
        return self.series.to_csv()

    def render(self, fault_windows: list[tuple[float, float]] | None = None,
               width: int = 40) -> str:
        """An aligned human-readable table with a throughput bar.

        ``fault_windows`` marks windows overlapping a scheduled outage
        with ``*`` so the degradation is visible at a glance.
        """
        windows = self.windows()
        if not windows:
            return "(no operations recorded)"
        peak = max(w.throughput for w in windows) or 1.0
        lines = [f"{'window':>13}  {'ops/s':>9}  {'err%':>6}  "]
        for w in windows:
            marker = " "
            for t0, t1 in fault_windows or []:
                if w.start < t1 and w.end > t0:
                    marker = "*"
                    break
            bar = "#" * int(round(w.throughput / peak * width))
            lines.append(
                f"{w.start:6.2f}-{w.end:<6.2f} {marker}"
                f"{w.throughput:>9,.0f}  {w.error_rate * 100:>5.1f}%  {bar}"
            )
        if fault_windows:
            lines.append("(* = window overlaps a scheduled fault)")
        return "\n".join(lines)
