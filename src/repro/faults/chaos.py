"""The chaos controller: executes a fault schedule against a cluster.

The controller is itself a simulation process.  At each scheduled fault
time it drives the node lifecycle — :meth:`~repro.sim.cluster.Node.fail`
drains the node's resource queues and drops it off the network,
:meth:`~repro.sim.cluster.Node.recover` brings it back with cold caches —
and applies partition filters / disk degradations at the network and
disk layers.  Deployed stores subscribe as listeners so they can react
the way their real counterparts do (Cassandra replays hinted handoffs,
the HBase master reassigns regions).
"""

from __future__ import annotations

from typing import Optional

from repro.faults.schedule import FaultAction, FaultKind, FaultSchedule
from repro.sim.cluster import Cluster, Node
from repro.sim.kernel import Process

__all__ = ["ChaosController"]


class ChaosController:
    """Drives a :class:`FaultSchedule` against a live cluster."""

    def __init__(self, cluster: Cluster, schedule: FaultSchedule):
        self.cluster = cluster
        self.schedule = schedule
        self._listeners: list[object] = []
        #: Applied actions as ``(sim_time, description)`` pairs.
        self.log: list[tuple[float, str]] = []
        #: Optional :class:`~repro.obs.recorder.FlightRecorder`: every
        #: applied action lands in the observability ring too.
        self.recorder = None

    def subscribe(self, listener: object) -> None:
        """Register a listener with ``on_node_down`` / ``on_node_up`` hooks.

        Both hooks are optional; stores use them for failure *handling*
        (hinted-handoff replay, region reassignment).
        """
        self._listeners.append(listener)

    def start(self) -> Optional[Process]:
        """Launch the controller process (no-op for an empty schedule)."""
        if not len(self.schedule):
            return None
        return self.cluster.sim.process(self._run(), name="chaos")

    # -- execution -----------------------------------------------------------

    def _run(self):
        sim = self.cluster.sim
        for action in self.schedule.actions():
            delay = action.at - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            self._apply(action)

    def _notify(self, hook: str, node: Node) -> None:
        for listener in self._listeners:
            method = getattr(listener, hook, None)
            if method is not None:
                method(node)

    def _apply(self, action: FaultAction) -> None:
        cluster = self.cluster
        # Recorded before the effect lands: a listener-triggered dump
        # (e.g. node-failure) must contain its own cause.
        if self.recorder is not None:
            self.recorder.record("chaos", action=action.describe())
        if action.kind is FaultKind.CRASH:
            node = cluster.node(action.target)
            node.fail()
            self._notify("on_node_down", node)
        elif action.kind is FaultKind.RESTART:
            node = cluster.node(action.target)
            node.recover()
            self._notify("on_node_up", node)
        elif action.kind is FaultKind.PARTITION:
            cluster.network.partition(action.groups)
        elif action.kind is FaultKind.HEAL:
            cluster.network.heal()
        elif action.kind is FaultKind.SLOW_DISK:
            cluster.node(action.target).disk.degrade(action.factor)
        elif action.kind is FaultKind.RESTORE_DISK:
            cluster.node(action.target).disk.restore()
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown fault kind {action.kind!r}")
        self.log.append((cluster.sim.now, action.describe()))
