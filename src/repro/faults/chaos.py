"""The chaos controller: executes a fault schedule against a cluster.

The controller is itself a simulation process.  At each scheduled fault
time it drives the node lifecycle — :meth:`~repro.sim.cluster.Node.fail`
drains the node's resource queues and drops it off the network,
:meth:`~repro.sim.cluster.Node.recover` brings it back with cold caches —
and applies partition filters / disk degradations / gray failures at the
network, disk and CPU layers.  Deployed stores subscribe as listeners so
they can react the way their real counterparts do (Cassandra replays
hinted handoffs, the HBase master reassigns regions).

The controller also emits the **declared-loss manifest** the audit layer
reconciles durability against: when a crash is scheduled with no later
restart, every subscribed store is asked (via
:meth:`~repro.stores.base.Store.declared_loss`) whether losing that node
loses single-copy data *by design* — a client-sharded Redis/MySQL shard,
an RF=1 token range.  Acked writes that become unreadable for a
manifest-declared reason are reported as declared losses, not
durability violations; everything else is a violation.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.schedule import FaultAction, FaultKind, FaultSchedule
from repro.sim.cluster import Cluster, Node
from repro.sim.kernel import Process

__all__ = ["ChaosController"]


class ChaosController:
    """Drives a :class:`FaultSchedule` against a live cluster."""

    def __init__(self, cluster: Cluster, schedule: FaultSchedule):
        self.cluster = cluster
        self.schedule = schedule
        # Build-time validation: a schedule naming unknown nodes or
        # healing a partition that never happened fails here, not
        # mid-run (clients are valid chaos targets too).
        schedule.validate([node.name for node in
                           cluster.servers + cluster.clients])
        self._listeners: list[object] = []
        #: Applied actions as ``(sim_time, description)`` pairs.
        self.log: list[tuple[float, str]] = []
        #: Optional :class:`~repro.obs.recorder.FlightRecorder`: every
        #: applied action lands in the observability ring too.
        self.recorder = None
        #: Declared-loss manifest: dict entries for data the schedule
        #: loses *by design* (crash with no scheduled restart on a
        #: store holding single-copy state for that node).
        self.loss_manifest: list[dict] = []
        #: Node names crashed by this schedule and never restarted.
        self._never_restarted = {
            node for node in {a.target for a in schedule.actions()
                              if a.kind is FaultKind.CRASH}
            if any(end == float("inf")
                   for __, end in schedule.outage_windows(node))
        }

    def subscribe(self, listener: object) -> None:
        """Register a listener with ``on_node_down`` / ``on_node_up`` hooks.

        Both hooks are optional; stores use them for failure *handling*
        (hinted-handoff replay, region reassignment).  Listeners with a
        ``declared_loss`` hook also contribute to the loss manifest.
        """
        self._listeners.append(listener)

    def start(self) -> Optional[Process]:
        """Launch the controller process (no-op for an empty schedule)."""
        if not len(self.schedule):
            return None
        return self.cluster.sim.process(self._run(), name="chaos")

    # -- execution -----------------------------------------------------------

    def _run(self):
        sim = self.cluster.sim
        for action in self.schedule.actions():
            delay = action.at - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            self._apply(action)

    def _notify(self, hook: str, node: Node) -> None:
        for listener in self._listeners:
            method = getattr(listener, hook, None)
            if method is not None:
                method(node)

    def _declare_losses(self, node: Node) -> None:
        """Record by-design data losses for a permanently crashed node."""
        if node not in self.cluster.servers:
            return  # a crashed client loses no server-side data
        for listener in self._listeners:
            probe = getattr(listener, "declared_loss", None)
            if probe is None:
                continue
            reason = probe(node)
            if reason:
                self.loss_manifest.append({
                    "t": self.cluster.sim.now,
                    "node": node.name,
                    "store": getattr(listener, "name", type(listener).__name__),
                    "reason": reason,
                })

    def _apply(self, action: FaultAction) -> None:
        cluster = self.cluster
        # Recorded before the effect lands: a listener-triggered dump
        # (e.g. node-failure) must contain its own cause.
        if self.recorder is not None:
            self.recorder.record("chaos", action=action.describe())
        if action.kind is FaultKind.CRASH:
            node = cluster.node(action.target)
            node.fail()
            if action.target in self._never_restarted:
                self._declare_losses(node)
            self._notify("on_node_down", node)
        elif action.kind is FaultKind.RESTART:
            node = cluster.node(action.target)
            node.recover()
            self._notify("on_node_up", node)
        elif action.kind is FaultKind.PARTITION:
            cluster.network.partition(action.groups)
        elif action.kind is FaultKind.HEAL:
            cluster.network.heal()
        elif action.kind is FaultKind.SLOW_DISK:
            cluster.node(action.target).disk.degrade(action.factor)
        elif action.kind is FaultKind.RESTORE_DISK:
            cluster.node(action.target).disk.restore()
        elif action.kind is FaultKind.FLAKY_NIC:
            cluster.network.degrade_link(action.target, loss=action.loss,
                                         jitter_s=action.jitter_s)
        elif action.kind is FaultKind.RESTORE_NIC:
            cluster.network.restore_link(action.target)
        elif action.kind is FaultKind.ZOMBIE:
            # Deliberately no on_node_down: a zombie is the failure
            # liveness detection cannot see.
            cluster.node(action.target).zombie(action.factor)
        elif action.kind is FaultKind.UNZOMBIE:
            cluster.node(action.target).unzombie()
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown fault kind {action.kind!r}")
        self.log.append((cluster.sim.now, action.describe()))
