"""The fault-schedule DSL.

A :class:`FaultSchedule` is a deterministic plan of infrastructure
faults over simulated time: node crashes (with optional restarts),
network partitions (with optional heals), and slow-disk degradations.
Schedules are built either explicitly at absolute times::

    schedule = (FaultSchedule()
                .crash("server-1", at=2.0, restart_after=3.0)
                .slow_disk("server-2", at=1.0, factor=8.0, duration=2.0))

or drawn from a seeded random process (:meth:`FaultSchedule.random`),
so chaos runs stay exactly reproducible — the same seed yields the same
byte-identical availability timeline, which the determinism tests pin.

The schedule is pure data; :class:`repro.faults.chaos.ChaosController`
executes it against a live cluster.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

__all__ = ["FaultKind", "FaultAction", "FaultSchedule"]


class FaultKind(enum.Enum):
    """The fault vocabulary the chaos controller understands."""

    CRASH = "crash"
    RESTART = "restart"
    PARTITION = "partition"
    HEAL = "heal"
    SLOW_DISK = "slow_disk"
    RESTORE_DISK = "restore_disk"
    #: Gray failure: the node's NIC drops packets / adds latency jitter.
    FLAKY_NIC = "flaky_nic"
    RESTORE_NIC = "restore_nic"
    #: Gray failure: the node is alive but pathologically slow —
    #: invisible to crash-liveness detection (``Node.up`` stays True).
    ZOMBIE = "zombie"
    UNZOMBIE = "unzombie"


#: Kinds that require a node name in :attr:`FaultAction.target`.
_NODE_SCOPED = frozenset({
    FaultKind.CRASH, FaultKind.RESTART, FaultKind.SLOW_DISK,
    FaultKind.RESTORE_DISK, FaultKind.FLAKY_NIC, FaultKind.RESTORE_NIC,
    FaultKind.ZOMBIE, FaultKind.UNZOMBIE,
})


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault transition."""

    at: float
    kind: FaultKind
    #: Node name for node-scoped faults (crash/restart/slow-disk/zombie).
    target: Optional[str] = None
    #: Partition groups for PARTITION actions.
    groups: tuple[tuple[str, ...], ...] = ()
    #: Disk service-time multiplier for SLOW_DISK actions, or the
    #: whole-node slowdown for ZOMBIE actions.
    factor: float = 1.0
    #: Packet-loss probability for FLAKY_NIC actions.
    loss: float = 0.0
    #: Added latency jitter bound (seconds) for FLAKY_NIC actions.
    jitter_s: float = 0.0

    def __post_init__(self) -> None:
        # Constructed actions are validated here so a malformed fault
        # fails when the schedule is built, not minutes into a run.
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.kind in _NODE_SCOPED and not self.target:
            raise ValueError(f"{self.kind.value} needs a target node")
        if self.kind is FaultKind.SLOW_DISK and self.factor < 1.0:
            # Covers the factor <= 0 class too: Disk.degrade requires
            # >= 1.0, so anything smaller would fail mid-run.
            raise ValueError(
                f"slow-disk factor must be >= 1.0, got {self.factor}")
        if self.kind is FaultKind.ZOMBIE and self.factor <= 1.0:
            raise ValueError(
                f"zombie slowdown must be > 1.0, got {self.factor}")
        if self.kind is FaultKind.FLAKY_NIC:
            if not 0.0 <= self.loss < 1.0:
                raise ValueError(
                    f"packet-loss probability must be in [0, 1), "
                    f"got {self.loss}")
            if self.jitter_s < 0:
                raise ValueError(
                    f"jitter_s must be >= 0, got {self.jitter_s}")
            if self.loss == 0.0 and self.jitter_s == 0.0:
                raise ValueError("a flaky NIC needs loss > 0 or jitter > 0")

    def describe(self) -> str:
        """A one-line human-readable rendering (chaos log, CLI)."""
        if self.kind is FaultKind.PARTITION:
            sides = " | ".join(",".join(g) for g in self.groups)
            return f"partition [{sides}]"
        if self.kind is FaultKind.HEAL:
            return "heal partition"
        if self.kind is FaultKind.SLOW_DISK:
            return f"slow disk {self.target} x{self.factor:g}"
        if self.kind is FaultKind.RESTORE_DISK:
            return f"restore disk {self.target}"
        if self.kind is FaultKind.FLAKY_NIC:
            return (f"flaky nic {self.target} "
                    f"loss={self.loss:.1%} jitter={self.jitter_s * 1e3:g}ms")
        if self.kind is FaultKind.RESTORE_NIC:
            return f"restore nic {self.target}"
        if self.kind is FaultKind.ZOMBIE:
            return f"zombie {self.target} x{self.factor:g}"
        if self.kind is FaultKind.UNZOMBIE:
            return f"unzombie {self.target}"
        return f"{self.kind.value} {self.target}"


@dataclass
class FaultSchedule:
    """An ordered plan of fault actions over simulated time."""

    _actions: list[FaultAction] = field(default_factory=list)

    def _add(self, action: FaultAction) -> "FaultSchedule":
        if action.at < 0:
            raise ValueError(f"fault time must be >= 0, got {action.at}")
        self._actions.append(action)
        return self

    # -- the DSL -------------------------------------------------------------

    def crash(self, node: str, at: float,
              restart_after: Optional[float] = None) -> "FaultSchedule":
        """Crash ``node`` at time ``at``; optionally restart it later."""
        self._add(FaultAction(at, FaultKind.CRASH, target=node))
        if restart_after is not None:
            if restart_after <= 0:
                raise ValueError("restart_after must be > 0")
            self._add(FaultAction(at + restart_after, FaultKind.RESTART,
                                  target=node))
        return self

    def restart(self, node: str, at: float) -> "FaultSchedule":
        """Restart a previously crashed ``node`` at time ``at``."""
        return self._add(FaultAction(at, FaultKind.RESTART, target=node))

    def partition(self, groups: Sequence[Iterable[str]], at: float,
                  heal_after: Optional[float] = None) -> "FaultSchedule":
        """Split the network into ``groups`` at ``at``; optionally heal."""
        frozen = tuple(tuple(g) for g in groups)
        if len(frozen) < 2:
            raise ValueError("a partition needs at least two groups")
        self._add(FaultAction(at, FaultKind.PARTITION, groups=frozen))
        if heal_after is not None:
            if heal_after <= 0:
                raise ValueError("heal_after must be > 0")
            self._add(FaultAction(at + heal_after, FaultKind.HEAL))
        return self

    def slow_disk(self, node: str, at: float, factor: float,
                  duration: Optional[float] = None) -> "FaultSchedule":
        """Degrade ``node``'s disk by ``factor``; optionally restore."""
        if factor < 1.0:
            raise ValueError(f"slow-disk factor must be >= 1.0, got {factor}")
        self._add(FaultAction(at, FaultKind.SLOW_DISK, target=node,
                              factor=factor))
        if duration is not None:
            if duration <= 0:
                raise ValueError("duration must be > 0")
            self._add(FaultAction(at + duration, FaultKind.RESTORE_DISK,
                                  target=node))
        return self

    def flaky_nic(self, node: str, at: float, loss: float = 0.05,
                  jitter_s: float = 0.0,
                  duration: Optional[float] = None) -> "FaultSchedule":
        """Gray failure: drop a fraction of ``node``'s packets / add jitter."""
        self._add(FaultAction(at, FaultKind.FLAKY_NIC, target=node,
                              loss=loss, jitter_s=jitter_s))
        if duration is not None:
            if duration <= 0:
                raise ValueError("duration must be > 0")
            self._add(FaultAction(at + duration, FaultKind.RESTORE_NIC,
                                  target=node))
        return self

    def zombie(self, node: str, at: float, slowdown: float = 20.0,
               duration: Optional[float] = None) -> "FaultSchedule":
        """Gray failure: ``node`` stays up but runs ``slowdown``x slower."""
        self._add(FaultAction(at, FaultKind.ZOMBIE, target=node,
                              factor=slowdown))
        if duration is not None:
            if duration <= 0:
                raise ValueError("duration must be > 0")
            self._add(FaultAction(at + duration, FaultKind.UNZOMBIE,
                                  target=node))
        return self

    # -- validation ----------------------------------------------------------

    def validate(self, nodes: Sequence[str]) -> None:
        """Reject a schedule that cannot execute against ``nodes``.

        Catches, at build time rather than mid-run: node-scoped actions
        or PARTITION groups naming unknown nodes, and HEAL actions with
        no partition in effect.  Called by the chaos controller when it
        binds the schedule to a concrete cluster.
        """
        known = set(nodes)
        partitioned = False
        for action in self.actions():
            if action.kind in _NODE_SCOPED and action.target not in known:
                raise ValueError(
                    f"fault {action.describe()!r} targets unknown node "
                    f"{action.target!r} (cluster has: "
                    f"{', '.join(sorted(known))})")
            if action.kind is FaultKind.PARTITION:
                unknown = sorted(
                    {name for group in action.groups for name in group}
                    - known)
                if unknown:
                    raise ValueError(
                        f"partition at t={action.at:g} names unknown "
                        f"node(s): {', '.join(unknown)}")
                partitioned = True
            elif action.kind is FaultKind.HEAL:
                if not partitioned:
                    raise ValueError(
                        f"heal at t={action.at:g} has no prior partition "
                        f"to heal")
                partitioned = False

    # -- queries -------------------------------------------------------------

    def actions(self) -> list[FaultAction]:
        """All actions in execution order (time, then insertion order)."""
        ordered = sorted(enumerate(self._actions),
                         key=lambda pair: (pair[1].at, pair[0]))
        return [action for __, action in ordered]

    def __len__(self) -> int:
        return len(self._actions)

    def outage_windows(self, node: str) -> list[tuple[float, float]]:
        """The [crash, restart) intervals scheduled for ``node``.

        An unrestarted crash yields an open interval ending at ``inf``.
        """
        windows: list[tuple[float, float]] = []
        down_since: Optional[float] = None
        for action in self.actions():
            if action.target != node:
                continue
            if action.kind is FaultKind.CRASH and down_since is None:
                down_since = action.at
            elif action.kind is FaultKind.RESTART and down_since is not None:
                windows.append((down_since, action.at))
                down_since = None
        if down_since is not None:
            windows.append((down_since, float("inf")))
        return windows

    # -- seeded-random construction -------------------------------------------

    @classmethod
    def random(cls, seed: int, nodes: Sequence[str], horizon_s: float,
               n_crashes: int = 1,
               min_outage_s: float = 0.5,
               max_outage_s: Optional[float] = None,
               restart_probability: float = 1.0,
               slow_disk_probability: float = 0.0,
               slow_disk_factor: float = 8.0) -> "FaultSchedule":
        """A reproducible random chaos plan over ``[0, horizon_s)``.

        Crash times land in the middle 70% of the horizon so the run has
        a pristine lead-in and (usually) a post-recovery tail.  The same
        ``seed`` always produces the same schedule.
        """
        if not nodes:
            raise ValueError("need at least one node to schedule faults on")
        if horizon_s <= 0:
            raise ValueError("horizon_s must be > 0")
        rng = random.Random(seed)
        max_outage = max_outage_s if max_outage_s is not None else \
            max(min_outage_s, 0.3 * horizon_s)
        schedule = cls()
        for __ in range(n_crashes):
            target = rng.choice(list(nodes))
            at = rng.uniform(0.15 * horizon_s, 0.85 * horizon_s)
            if rng.random() < restart_probability:
                outage = rng.uniform(min_outage_s, max_outage)
                schedule.crash(target, at=at, restart_after=outage)
            else:
                schedule.crash(target, at=at)
        for name in nodes:
            if rng.random() < slow_disk_probability:
                at = rng.uniform(0.1 * horizon_s, 0.7 * horizon_s)
                duration = rng.uniform(min_outage_s, max_outage)
                schedule.slow_disk(name, at=at, factor=slow_disk_factor,
                                   duration=duration)
        return schedule
