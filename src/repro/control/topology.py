"""Topology actuation: scale-out, scale-in, replacement — with real IO.

:class:`ClusterTopology` is the actuator half of the control plane.  The
stores' :meth:`~repro.stores.base.Store.grow` / ``shrink`` methods are
*functional*: they re-home ownership and move the data atomically at
decision time and return the bill — ``(src, dst, nbytes)`` moves.
Operations already in flight across the switch redirect to the current
owner at apply time (each store's MOVED/NotServingRegion analogue), and
:meth:`~repro.stores.base.Store.rebalance_moves` catch-up passes sweep
anything that landed mid-charge — together they guarantee no
acknowledged write is stranded on an old owner.  This layer
pays that bill against the simulated hardware: a sequential read off the
source disk, a NIC-to-NIC transfer, and a sequential write on the
destination for disk-backed stores; NIC-only for in-memory stores
(``rebalance_uses_disk = False``).  Rebalance traffic therefore contends
with foreground operations for the same disks and NICs, exactly the
interference a real resharding causes.

The class also keeps the provisioning ledger — per-node active intervals
— from which :meth:`node_seconds` computes the rental cost the
autoscaling benchmark compares against static peak provisioning.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.instrument import instrument_node
from repro.sim.cluster import Cluster, Node
from repro.stores.base import Store

__all__ = ["ClusterTopology"]


class ClusterTopology:
    """Executes topology changes for one deployed store."""

    def __init__(self, cluster: Cluster, store: Store, registry=None):
        self.cluster = cluster
        self.store = store
        #: Metrics registry new nodes are wired into (``None`` = off).
        self.registry = registry
        #: Rebalance accounting: individual billed moves and bytes.
        self.moves_billed = 0
        self.bytes_moved = 0
        #: Provisioning ledger: node name -> activation time; retirement
        #: closes the interval.  Initial servers are active from t=0.
        self._provisioned_at = {
            node.name: 0.0 for node in cluster.servers if not node.retired}
        self._retired_at: dict[str, float] = {}

    # -- actions (simulation process bodies) ---------------------------------

    def scale_out(self, provision_delay_s: float = 0.0):
        """Process: provision one node and admit it to the store.

        After the provisioning lead time the node joins the cluster, its
        telemetry is registered, the store re-homes ownership atomically
        (per-store semantics: token handoff, region reassignment, client
        ring remap), and the data movement is charged to the simulated
        disks and NICs.  Returns the new :class:`Node`.
        """
        sim = self.cluster.sim
        if provision_delay_s > 0:
            yield sim.timeout(provision_delay_s)
        node = self.cluster.add_server()
        self._provisioned_at[node.name] = sim.now
        if self.registry is not None:
            instrument_node(self.registry, node)
        moves = self.store.grow(node)
        yield from self._charge(moves)
        yield from self._catch_up()
        return node

    def scale_in(self, node: Node):
        """Process: drain ``node``'s data, then retire it.

        The store's ``shrink`` re-homes ownership immediately (no window
        where a write could land on the leaving node), the move bill is
        charged, and only then is the node powered off and struck from
        the rental ledger.
        """
        sim = self.cluster.sim
        index = self.cluster.servers.index(node)
        moves = self.store.shrink(index)
        yield from self._charge(moves)
        yield from self._catch_up()
        self.cluster.retire_server(node)
        self._retired_at[node.name] = sim.now
        return node

    def replace(self, node: Node, provision_delay_s: float = 0.0):
        """Process: bring a crashed node back into service.

        Replacement is modelled as recovery-in-slot: durable state
        survives, caches are cold, and the store's ``on_node_up`` hook
        runs its failure-handling epilogue (hint replay, region
        reassignment back).  The node was never retired, so its rental
        interval keeps accruing — crashed capacity still costs money.
        """
        sim = self.cluster.sim
        if provision_delay_s > 0:
            yield sim.timeout(provision_delay_s)
        if node.retired or node.up:
            return node
        node.recover()
        self.store.on_node_up(node)
        return node

    def _catch_up(self):
        """Process: bill catch-up passes until the store reports clean.

        Charging the main move bill takes simulated time, during which
        operations routed under the old map keep landing (redirected to
        their current owners).  Real resharding tools run catch-up
        passes until one comes back empty; so does this loop — each pass
        re-homes and bills whatever drifted while the previous pass was
        being paid for.  Convergence is guaranteed: in-flight work is
        bounded by the stores' admission queues.
        """
        while True:
            extra = self.store.rebalance_moves()
            if not extra:
                return
            yield from self._charge(extra)

    def _charge(self, moves):
        """Process: pay for rebalance data movement, move by move.

        Disk-backed stores stream each move through the source disk, the
        wire, and the destination disk; in-memory stores pay the wire
        only.  Moves are charged sequentially — real rebalancers throttle
        to one stream precisely to bound interference with foreground
        traffic.
        """
        servers = self.cluster.servers
        network = self.cluster.network
        uses_disk = self.store.rebalance_uses_disk
        for src, dst, nbytes in moves:
            if nbytes <= 0:
                continue
            self.moves_billed += 1
            self.bytes_moved += nbytes
            source, target = servers[src], servers[dst]
            if uses_disk:
                yield from source.disk.read(nbytes, sequential=True)
            yield from network.transfer(source.name, target.name, nbytes)
            if uses_disk:
                yield from target.disk.write(nbytes, sequential=True,
                                             sync=True)

    # -- accounting ----------------------------------------------------------

    def node_seconds(self, until: Optional[float] = None) -> float:
        """Total provisioned node-seconds through ``until`` (default now).

        The autoscaling economy metric: what the fleet would be billed
        for, summed over every node's active interval.
        """
        if until is None:
            until = self.cluster.sim.now
        total = 0.0
        for name, start in self._provisioned_at.items():
            end = self._retired_at.get(name, until)
            total += max(0.0, end - start)
        return total
