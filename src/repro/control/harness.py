"""Autoscaling scenario harness: open-loop load + control plane + chaos.

:func:`run_control_scenario` composes the pieces the control benchmark
and the ``apmbench control`` CLI share: an open-loop arrival process
(optionally shaped — diurnal, flash crowd, step), full cluster + store
telemetry sampled at the controller's tick, the reconciliation loop
actuating through :class:`~repro.control.topology.ClusterTopology`, and
an optional chaos kill the controller must heal without operator input.

A scenario with ``policy=None`` is the *static arm*: same load, same
store, fixed fleet, no controller — the peak-provisioned baseline the
autoscaled arm is judged against on SLO goodput and node-seconds.

Results are plain JSON-able records stamped with provenance
(:func:`repro.analysis.provenance.stamp`); no wall-clock state enters
the payload, so a fixed seed yields byte-identical exports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.analysis.provenance import stamp
from repro.control.controller import Controller
from repro.control.policy import ControlPolicy
from repro.control.topology import ClusterTopology
from repro.overload.shapes import ArrivalShape

__all__ = ["ControlRunResult", "ControlScenario", "run_control_scenario"]


@dataclass(frozen=True)
class ControlScenario:
    """Everything that defines one autoscaling (or static) run."""

    #: Store / workload / initial fleet / seed — the benchmark config.
    #: ``config.n_nodes`` is the *starting* fleet: the trough fleet for
    #: an autoscaled arm, the peak fleet for a static arm.
    config: object
    #: Peak offered rate (the shape's base rate), ops/s.
    offered_rate: float
    #: Offered-load horizon, simulated seconds.
    duration_s: float
    #: Arrival shape (``None`` = constant rate).
    shape: Optional[ArrivalShape] = None
    #: Control policy (``None`` = static arm, no controller).
    policy: Optional[ControlPolicy] = None
    #: Latency SLO for goodput accounting.
    slo_s: float = 0.25
    #: Availability-timeline bucket width.
    timeline_s: float = 0.5
    #: Chaos: crash one node at this simulated time (``None`` = off).
    kill_at_s: Optional[float] = None
    #: Victim name; ``None`` picks the highest-index live member.
    kill_node: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "offered_rate": self.offered_rate,
            "duration_s": self.duration_s,
            "shape": None if self.shape is None else self.shape.to_dict(),
            "policy": None if self.policy is None else self.policy.to_dict(),
            "slo_s": self.slo_s,
            "timeline_s": self.timeline_s,
            "kill_at_s": self.kill_at_s,
            "kill_node": self.kill_node,
        }


@dataclass(frozen=True)
class ControlRunResult:
    """One scenario's outcome: goodput, economy, and the audit trail."""

    scenario: ControlScenario
    #: The open-loop measurement (:class:`OverloadPoint` projection).
    point: dict
    #: Per-window availability evidence (arrivals / in-SLO).
    timeline: list
    #: The controller's decision log (empty for the static arm).
    decisions: list
    #: Provisioned node-seconds over the offered-load horizon.
    node_seconds: float
    #: Active fleet size when the run ended.
    n_active_end: int
    #: Rebalance traffic the control plane charged.
    bytes_moved: int
    moves_billed: int
    #: Reconciliation ticks executed (0 for the static arm).
    ticks: int

    @property
    def goodput(self) -> float:
        return self.point["goodput"]

    def to_dict(self) -> dict:
        """The JSON export, provenance-stamped and byte-deterministic."""
        payload = {
            "scenario": self.scenario.to_dict(),
            "point": self.point,
            "timeline": self.timeline,
            "decisions": self.decisions,
            "node_seconds": self.node_seconds,
            "n_active_end": self.n_active_end,
            "bytes_moved": self.bytes_moved,
            "moves_billed": self.moves_billed,
            "ticks": self.ticks,
        }
        return stamp(payload, self.scenario.config)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _kill_process(run, scenario):
    """Process: crash the victim node at the scheduled time."""
    yield run.sim.timeout(scenario.kill_at_s)
    if scenario.kill_node is not None:
        node = run.cluster.node(scenario.kill_node)
    else:
        node = None
        for index in reversed(run.store.members()):
            candidate = run.cluster.servers[index]
            if candidate.up and not candidate.retired:
                node = candidate
                break
        if node is None:
            return
    node.fail()
    run.store.on_node_down(node)


def run_control_scenario(scenario: ControlScenario) -> ControlRunResult:
    """Execute one scenario end to end on simulated time."""
    from repro.overload.openloop import _OpenLoopRun

    run = _OpenLoopRun(scenario.config, scenario.offered_rate,
                       scenario.duration_s, 0.0, scenario.slo_s,
                       queue_sample_s=0.02, shape=scenario.shape,
                       timeline_s=scenario.timeline_s)
    policy = scenario.policy
    controller = None
    sampler = None
    registry = None
    if policy is not None:
        from repro.metrics.instrument import instrument_cluster
        from repro.metrics.registry import MetricsRegistry
        from repro.metrics.sampler import MetricsSampler

        registry = MetricsRegistry(run.sim)
        instrument_cluster(registry, run.cluster)
        run.store.attach_metrics(registry)
        # The sampler must start before the controller: at a shared
        # timestamp the earlier process runs first, so every tick reads
        # the window the sampler just closed.
        sampler = MetricsSampler(registry, interval_s=policy.tick_s)
        sampler.start()
    topology = ClusterTopology(run.cluster, run.store, registry)
    if policy is not None:
        controller = Controller(topology, sampler.series, policy)
        controller.start()
    if scenario.kill_at_s is not None:
        run.sim.process(_kill_process(run, scenario), name="chaos-kill")

    point = run.run()
    if sampler is not None:
        sampler.close()
    if controller is not None:
        controller.stop()
    # Bill node-seconds over the offered-load horizon only: the drain
    # tail after the last arrival differs between arms and is not load
    # the operator provisioned for.
    horizon = min(run.sim.now, scenario.duration_s)
    return ControlRunResult(
        scenario=scenario,
        point=point.to_dict(),
        timeline=run.timeline(),
        decisions=(controller.decision_log() if controller is not None
                   else []),
        node_seconds=topology.node_seconds(until=horizon),
        n_active_end=run.cluster.n_active,
        bytes_moved=topology.bytes_moved,
        moves_billed=topology.moves_billed,
        ticks=(controller.ticks if controller is not None else 0),
    )
