"""The reconciliation loop: observe -> diagnose -> remediate.

The :class:`Controller` is a simulation process, exactly like the chaos
controller it mirrors: where chaos *injects* failures, this loop
*answers* them.  Every ``tick_s`` of simulated time it

1. **observes** — reads the sampled telemetry window that just closed
   (the :class:`~repro.metrics.sampler.MetricsSampler` shares the tick
   cadence and is started first, so its snapshot lands before the
   controller wakes at the same timestamp);
2. **diagnoses** — runs the saturation analyzer over the window and
   reduces it to the machine-readable
   :class:`~repro.metrics.saturation.SaturationVerdict`, plus the
   store's admission-shed rate as a secondary overload signal and a
   liveness sweep for crashed nodes;
3. **remediates** — at most one topology action at a time, through
   :class:`~repro.control.topology.ClusterTopology`, under the
   :class:`~repro.control.policy.ControlPolicy` guardrails (sustained
   thresholds, dead band, cooldown, fleet floor/ceiling).

Everything is driven by simulated time and sampled counters, so a fixed
seed reproduces the same decision log byte for byte.
"""

from __future__ import annotations

from typing import Optional

from repro.control.policy import ControlDecision, ControlPolicy
from repro.control.topology import ClusterTopology
from repro.metrics.saturation import analyze_saturation
from repro.metrics.timeseries import WindowedSeries

__all__ = ["Controller"]


class Controller:
    """Closes the telemetry -> topology loop for one deployed store."""

    def __init__(self, topology: ClusterTopology, series: WindowedSeries,
                 policy: ControlPolicy,
                 store_name: Optional[str] = None,
                 recorder=None):
        self.topology = topology
        self.policy = policy
        self.series = series
        #: Optional :class:`~repro.obs.recorder.FlightRecorder`: every
        #: decision lands in the observability ring alongside chaos
        #: events and rejected operations.
        self.recorder = recorder
        #: Store name for the analyzer's executor/op channels; defaults
        #: to the deployed store's own name.
        self.store_name = (store_name if store_name is not None
                           else topology.store.name)
        #: The audit trail: every action taken, in decision order.
        self.decisions: list[ControlDecision] = []
        self.ticks = 0
        self._high = 0
        self._low = 0
        self._cooldown_until = 0.0
        self._busy = False
        self._replacing: set[str] = set()
        self._last_shed = topology.store.total_shed()
        self._stopped = False
        self._process = None

    @property
    def cluster(self):
        return self.topology.cluster

    @property
    def sim(self):
        return self.topology.cluster.sim

    def start(self):
        """Spawn the reconciliation process."""
        if self._process is None:
            self._process = self.sim.process(self._run(),
                                             name="control-loop")
        return self._process

    def stop(self) -> None:
        """Stop reconciling at the next wake-up."""
        self._stopped = True

    # -- the loop ------------------------------------------------------------

    def _run(self):
        policy = self.policy
        while not self._stopped:
            yield self.sim.timeout(policy.tick_s)
            if self._stopped:
                break
            self._tick()
            self.ticks += 1

    def _tick(self) -> None:
        sim = self.sim
        now = sim.now
        policy = self.policy
        self._sweep_failures(now)

        # Diagnose the window that just closed.
        report = analyze_saturation(self.series, self.cluster,
                                    now - policy.tick_s, now,
                                    self.store_name)
        verdict = report.summary
        shed_total = self.topology.store.total_shed()
        shed_rate = (shed_total - self._last_shed) / policy.tick_s
        self._last_shed = shed_total

        shedding = (policy.shed_rate_per_s is not None
                    and shed_rate >= policy.shed_rate_per_s)
        if verdict.pressure >= policy.scale_out_pressure or shedding:
            self._high += 1
            self._low = 0
        elif verdict.pressure <= policy.scale_in_pressure and shed_rate == 0:
            self._low += 1
            self._high = 0
        else:
            self._high = self._low = 0

        # A pending replacement freezes scaling: a down node both skews
        # the pressure means and is itself the remediation in flight.
        if self._replacing or self._busy or now < self._cooldown_until:
            return

        cluster = self.cluster
        ceiling = min(policy.max_nodes, cluster.spec.max_nodes)
        if self._high >= policy.sustain_ticks and cluster.n_active < ceiling:
            reason = (f"shed rate {shed_rate:.1f}/s over budget"
                      if shedding and verdict.pressure
                      < policy.scale_out_pressure else
                      f"sustained {verdict.bottleneck} pressure "
                      f"{verdict.pressure:.2f} >= "
                      f"{policy.scale_out_pressure:.2f} "
                      f"for {self._high} ticks")
            self._decide("scale_out", cluster.next_server_name, reason,
                         verdict, cluster.n_active + 1)
            self._launch(self.topology.scale_out(policy.provision_delay_s))
        elif (self._low >= policy.sustain_ticks
              and cluster.n_active > policy.min_nodes):
            victim = self._scale_in_candidate()
            if victim is None:
                return
            reason = (f"sustained {verdict.bottleneck} pressure "
                      f"{verdict.pressure:.2f} <= "
                      f"{policy.scale_in_pressure:.2f} "
                      f"for {self._low} ticks")
            self._decide("scale_in", victim.name, reason, verdict,
                         cluster.n_active - 1)
            self._launch(self.topology.scale_in(victim))

    def _scale_in_candidate(self):
        """The youngest live store member — drained with the least data."""
        members = self.topology.store.members()
        for index in reversed(members):
            node = self.cluster.servers[index]
            if node.up and not node.retired:
                return node
        return None

    def _sweep_failures(self, now: float) -> None:
        """Diagnose crashed (not retired) members; schedule replacement."""
        policy = self.policy
        for index in self.topology.store.members():
            node = self.cluster.servers[index]
            if node.up or node.retired or node.name in self._replacing:
                continue
            self._replacing.add(node.name)
            self._log_decision(ControlDecision(
                t=now, action="replace", node=node.name,
                reason=f"node {node.name} is down and not retired",
                pressure=0.0, bottleneck="liveness",
                n_active=self.cluster.n_active))
            self.sim.process(self._replace(node),
                             name=f"control-replace:{node.name}")

    def _replace(self, node):
        policy = self.policy
        yield self.sim.timeout(policy.replace_grace_s)
        yield from self.topology.replace(node, policy.provision_delay_s)
        self._replacing.discard(node.name)
        self._cooldown_until = self.sim.now + policy.cooldown_s

    def _log_decision(self, decision: ControlDecision) -> None:
        self.decisions.append(decision)
        if self.recorder is not None:
            self.recorder.record("control-decision",
                                 action=decision.action,
                                 node=decision.node,
                                 reason=decision.reason)

    def _decide(self, action: str, node: str, reason: str, verdict,
                n_active: int) -> None:
        self._log_decision(ControlDecision(
            t=self.sim.now, action=action, node=node, reason=reason,
            pressure=verdict.pressure, bottleneck=verdict.bottleneck,
            n_active=n_active))
        self._high = self._low = 0

    def _launch(self, action) -> None:
        self._busy = True
        self.sim.process(self._supervise(action), name="control-action")

    def _supervise(self, action):
        try:
            yield from action
        finally:
            self._busy = False
            self._cooldown_until = self.sim.now + self.policy.cooldown_s

    # -- export --------------------------------------------------------------

    def decision_log(self) -> list:
        """The JSON-ready decision log (stable order and key layout)."""
        return [decision.to_dict() for decision in self.decisions]
