"""Control-plane policy knobs and the decision record.

:class:`ControlPolicy` is the declarative half of the reconciliation
loop: thresholds, sustain requirements, cooldowns and provisioning
delays.  Everything the controller does is a pure function of this
policy plus the sampled telemetry, which is what keeps autoscaling runs
byte-deterministic under a fixed seed.

:class:`ControlDecision` is one line of the controller's decision log —
the audit trail operators get from a real autoscaler, and the evidence
the control benchmark asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ControlDecision", "ControlPolicy"]


@dataclass(frozen=True)
class ControlPolicy:
    """Guardrails of the observe -> diagnose -> remediate loop.

    The defaults encode the standard hysteresis recipe: act only on
    *sustained* pressure (``sustain_ticks`` consecutive windows), leave
    a dead band between the scale-out and scale-in thresholds, and
    enforce a cooldown after every action so the loop observes the
    effect of one remediation before considering the next.
    """

    #: Reconciliation cadence (also the telemetry sampling window).
    tick_s: float = 0.25
    #: Mean binding-resource utilisation that demands scale-out.
    scale_out_pressure: float = 0.85
    #: Mean binding-resource utilisation below which scale-in is safe.
    scale_in_pressure: float = 0.5
    #: Consecutive ticks a threshold must hold before acting.
    sustain_ticks: int = 2
    #: Quiet period after an action completes (hysteresis).
    cooldown_s: float = 1.0
    #: Fleet-size floor and ceiling the controller may move between.
    min_nodes: int = 1
    max_nodes: int = 16
    #: Detection-to-decision delay before replacing a crashed node.
    replace_grace_s: float = 0.5
    #: Lead time to bring up a fresh (or replacement) node.
    provision_delay_s: float = 0.25
    #: Secondary scale-out trigger: sustained admission-shed rate
    #: (ops/s) — catches overload the utilisation means understate,
    #: e.g. one hot shard shedding while the fleet mean looks healthy.
    shed_rate_per_s: Optional[float] = None

    def __post_init__(self):
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if self.sustain_ticks < 1:
            raise ValueError("sustain_ticks must be >= 1")
        if not 0.0 < self.scale_in_pressure < self.scale_out_pressure <= 1.0:
            raise ValueError(
                "need 0 < scale_in_pressure < scale_out_pressure <= 1 "
                f"(got {self.scale_in_pressure}, {self.scale_out_pressure})")
        if self.min_nodes < 1:
            raise ValueError("min_nodes must be >= 1")
        if self.max_nodes < self.min_nodes:
            raise ValueError("max_nodes must be >= min_nodes")
        if self.cooldown_s < 0 or self.replace_grace_s < 0 \
                or self.provision_delay_s < 0:
            raise ValueError("delays must be >= 0")

    def to_dict(self) -> dict:
        return {
            "tick_s": self.tick_s,
            "scale_out_pressure": self.scale_out_pressure,
            "scale_in_pressure": self.scale_in_pressure,
            "sustain_ticks": self.sustain_ticks,
            "cooldown_s": self.cooldown_s,
            "min_nodes": self.min_nodes,
            "max_nodes": self.max_nodes,
            "replace_grace_s": self.replace_grace_s,
            "provision_delay_s": self.provision_delay_s,
            "shed_rate_per_s": self.shed_rate_per_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ControlPolicy":
        return cls(**payload)


@dataclass(frozen=True)
class ControlDecision:
    """One entry of the controller's decision log."""

    #: Simulated time the decision was taken.
    t: float
    #: ``scale_out`` | ``scale_in`` | ``replace``.
    action: str
    #: The node acted on (the new node's name for scale-out).
    node: str
    #: Human-readable diagnosis that justified the action.
    reason: str
    #: Mean binding-resource pressure observed in the deciding window.
    pressure: float
    #: The binding resource at decision time.
    bottleneck: str
    #: Active fleet size *after* the action takes effect.
    n_active: int

    def to_dict(self) -> dict:
        return {
            "t": self.t,
            "action": self.action,
            "node": self.node,
            "reason": self.reason,
            "pressure": self.pressure,
            "bottleneck": self.bottleneck,
            "n_active": self.n_active,
        }
