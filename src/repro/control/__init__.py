"""Autoscaling and self-healing: the telemetry -> topology loop.

The paper provisions every experiment statically and Section 2 notes the
workload's strong daily cycle — capacity bought for the peak idles
through the trough.  This package closes the loop the paper leaves open:
a reconciliation-style controller (observe -> diagnose -> remediate, the
Kubernetes auto-remediation pattern) that reads the metrics subsystem's
saturation verdicts and actuates topology changes against the live
simulated cluster:

* :mod:`repro.control.policy` — :class:`ControlPolicy` guardrails
  (sustained thresholds, dead band, cooldown, fleet bounds) and the
  :class:`ControlDecision` audit record;
* :mod:`repro.control.controller` — the :class:`Controller` process:
  scale-out on sustained binding-resource pressure or admission-shed
  rate, scale-in under the low-water mark, replacement of chaos-killed
  nodes without operator input;
* :mod:`repro.control.topology` — :class:`ClusterTopology`, the
  actuator: per-store rebalance semantics with data movement charged to
  the simulated disks and NICs, plus the node-seconds rental ledger;
* :mod:`repro.control.harness` — :func:`run_control_scenario`, the
  autoscaled-vs-static comparison behind ``apmbench control`` and
  ``benchmarks/bench_control.py``.

All of it runs on simulated time with seeded randomness only: a fixed
scenario yields a byte-identical decision log and export.
"""

from repro.control.controller import Controller
from repro.control.harness import (ControlRunResult, ControlScenario,
                                   run_control_scenario)
from repro.control.policy import ControlDecision, ControlPolicy
from repro.control.topology import ClusterTopology

__all__ = [
    "ClusterTopology",
    "ControlDecision",
    "ControlPolicy",
    "ControlRunResult",
    "ControlScenario",
    "Controller",
    "run_control_scenario",
]
