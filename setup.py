"""Setup shim.

The benchmark environment is offline and ships a setuptools without the
``wheel`` package, so PEP 517 editable installs (which need
``bdist_wheel``) fail.  This shim lets ``pip install -e .`` and
``python setup.py develop`` work through the legacy code path; all
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
